(* The paper's future work, implemented: grid-aware schedules for the
   scatter and alltoall patterns (Section 8: "We are particularly interested
   on the development of efficient communication schedules for other
   communication patterns like scatter and alltoall").

   Run with: dune exec examples/scatter_alltoall.exe *)

module Topology = Gridb_topology
module Ext = Gridb_extensions

let seconds us = us /. 1e6

let () =
  let grid = Topology.Grid5000.grid () in
  let root = Topology.Grid5000.root_cluster in

  (* --- Scatter: the problem reduces to ordering the root's sends; with
     per-cluster delivery tails q_c = L_c + T_scatter_c, Jackson's rule
     (longest tail first) is optimal. --- *)
  print_endline "scatter on GRID5000 (10 KB per process):";
  let msg_per_proc = 10_000 in
  let orders =
    [
      ("in-order (MagPIe-like)", Ext.Scatter_sched.in_order grid ~root);
      ("fastest edge first", Ext.Scatter_sched.fastest_edge_first grid ~root ~msg_per_proc);
      ("Jackson LDF", Ext.Scatter_sched.longest_delivery_first grid ~root ~msg_per_proc);
      ("optimal (brute force)", Ext.Scatter_sched.optimal_order grid ~root ~msg_per_proc);
    ]
  in
  List.iter
    (fun (name, order) ->
      let e = Ext.Scatter_sched.evaluate grid ~root ~msg_per_proc order in
      Printf.printf "  %-22s makespan %.4f s  order [%s]\n" name
        (seconds e.Ext.Scatter_sched.makespan)
        (String.concat ";" (List.map string_of_int e.Ext.Scatter_sched.order)))
    orders;

  (* --- Alltoall: aggregation through coordinators vs direct exchange. --- *)
  print_newline ();
  print_endline "alltoall on GRID5000 (bytes per process pair):";
  List.iter
    (fun m ->
      let p = Ext.Alltoall_sched.predict grid ~msg_per_pair:m in
      let direct = Ext.Alltoall_sched.predict_direct grid ~msg_per_pair:m in
      let simulated = Ext.Alltoall_sched.simulate grid ~msg_per_pair:m in
      Printf.printf
        "  %6d B: hierarchical %.4f s (gather %.4f + exchange %.4f + scatter %.4f) | simulated %.4f s | direct %.4f s\n"
        m (seconds p.Ext.Alltoall_sched.total)
        (seconds p.Ext.Alltoall_sched.gather)
        (seconds p.Ext.Alltoall_sched.exchange)
        (seconds p.Ext.Alltoall_sched.scatter)
        (seconds simulated) (seconds direct))
    [ 100; 1_000; 10_000 ];
  print_newline ();
  print_endline
    "Aggregation trades wide-area message count against volume: with only 88";
  print_endline
    "processes the direct exchange wins on this topology; the hierarchical";
  print_endline
    "variant pays volume quadratic in cluster sizes (cf. EXPERIMENTS.md).";
  print_endline
    "(The simulated column runs blocking rendezvous rounds on simMPI, hence";
  print_endline
    "slower than the gap-bound closed form.)";

  (* --- Reduce: any broadcast heuristic, reused by time reversal. --- *)
  print_newline ();
  print_endline "reduce on GRID5000 (1 MB, via broadcast reversal):";
  let inst = Gridb_sched.Instance.of_grid ~root ~msg:1_000_000 grid in
  List.iter
    (fun h ->
      let r = Ext.Reduce_sched.of_broadcast inst (Gridb_sched.Heuristics.run h inst) in
      Printf.printf "  %-10s gathers everything at the root in %.4f s\n"
        h.Gridb_sched.Heuristics.name
        (seconds r.Ext.Reduce_sched.makespan))
    Gridb_sched.Heuristics.
      [ flat_tree; ecef; ecef_lat_max; bottom_up ];
  let best, r =
    Ext.Reduce_sched.best_heuristic inst Gridb_sched.Heuristics.all
  in
  Printf.printf "  best: %s (%.4f s)\n" best.Gridb_sched.Heuristics.name
    (seconds r.Ext.Reduce_sched.makespan)

type t = { sizes : int array; values : float array }

let of_points pts =
  if pts = [] then invalid_arg "Piecewise.of_points: empty list";
  List.iter
    (fun (s, _) -> if s < 0 then invalid_arg "Piecewise.of_points: negative size")
    pts;
  let sorted = List.stable_sort (fun (a, _) (b, _) -> compare a b) pts in
  (* Keep the last value for duplicated sizes. *)
  let dedup =
    List.fold_left
      (fun acc (s, v) ->
        match acc with
        | (s', _) :: rest when s' = s -> (s, v) :: rest
        | _ -> (s, v) :: acc)
      [] sorted
    |> List.rev
  in
  {
    sizes = Array.of_list (List.map fst dedup);
    values = Array.of_list (List.map snd dedup);
  }

let linear ~intercept ~slope =
  of_points [ (0, intercept); (1_000_000, intercept +. (slope *. 1_000_000.)) ]

let eval t m =
  if m < 0 then invalid_arg "Piecewise.eval: negative size";
  let n = Array.length t.sizes in
  if n = 1 then t.values.(0)
  else if m <= t.sizes.(0) then t.values.(0)
  else if m >= t.sizes.(n - 1) then begin
    (* Extrapolate with the slope of the last segment. *)
    let s0 = t.sizes.(n - 2) and s1 = t.sizes.(n - 1) in
    let v0 = t.values.(n - 2) and v1 = t.values.(n - 1) in
    let slope = (v1 -. v0) /. float_of_int (s1 - s0) in
    v1 +. (slope *. float_of_int (m - s1))
  end
  else begin
    (* Binary search for the segment containing m. *)
    let rec search lo hi =
      (* invariant: sizes.(lo) <= m < sizes.(hi) *)
      if hi - lo = 1 then lo
      else begin
        let mid = (lo + hi) / 2 in
        if t.sizes.(mid) <= m then search mid hi else search lo mid
      end
    in
    let i = search 0 (n - 1) in
    let s0 = t.sizes.(i) and s1 = t.sizes.(i + 1) in
    let v0 = t.values.(i) and v1 = t.values.(i + 1) in
    let w = float_of_int (m - s0) /. float_of_int (s1 - s0) in
    v0 +. (w *. (v1 -. v0))
  end

let points t =
  Array.to_list (Array.mapi (fun i s -> (s, t.values.(i))) t.sizes)

let map f t = { t with values = Array.map f t.values }

let add a b =
  let union =
    List.sort_uniq compare (Array.to_list a.sizes @ Array.to_list b.sizes)
  in
  of_points (List.map (fun s -> (s, eval a s +. eval b s)) union)

let scale k t = map (fun v -> k *. v) t

let is_monotonic t =
  let ok = ref true in
  for i = 1 to Array.length t.values - 1 do
    if t.values.(i) < t.values.(i - 1) then ok := false
  done;
  !ok

let pp ppf t =
  Format.fprintf ppf "@[<h>[";
  Array.iteri
    (fun i s ->
      if i > 0 then Format.fprintf ppf "; ";
      Format.fprintf ppf "%d->%.3g" s t.values.(i))
    t.sizes;
  Format.fprintf ppf "]@]"

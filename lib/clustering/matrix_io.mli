(** Loading and saving machine-level latency matrices.

    The entry point for users with their own measurements: an [N x N]
    numeric CSV (one row per machine, microseconds, zero or blank diagonal)
    goes straight into {!Lowekamp.detect} and
    {!Abstraction.grid_of_matrix}, exactly the paper's Section 7 pipeline
    with real data.  Exposed on the CLI as [gridsched cluster --matrix]. *)

val load : string -> (float array array, string) result
(** Parse a square numeric CSV.  Blank lines and lines starting with ['#']
    are skipped; the diagonal may be blank or ["-"], read as 0.  Errors
    (file missing, non-numeric cell, ragged or non-square shape) are
    returned as a human-readable message with a line number. *)

val of_string : string -> (float array array, string) result

val save : string -> float array array -> unit
(** Write as CSV with ["%.6g"] cells.  @raise Sys_error on IO failure. *)

val validate :
  ?require_symmetric:bool -> float array array -> (unit, string) result
(** Checks squareness, non-negative entries, and (by default) symmetry
    within 1 % relative tolerance — measured matrices jitter. *)

module Hit_rate = Gridb_sched.Hit_rate

type point = { n : int; outcomes : Hit_rate.outcome list }

let run (config : Config.t) ~ns heuristics =
  List.mapi
    (fun i n ->
      let rng = Config.point_rng config ~point:i in
      let outcomes =
        Hit_rate.run ~model:config.Config.model ~rng
          ~iterations:config.Config.iterations ~n config.Config.ranges heuristics
      in
      { n; outcomes })
    ns

let mean_seconds point =
  List.map (fun o -> o.Hit_rate.mean_makespan /. 1e6) point.outcomes

let hits point = List.map (fun o -> float_of_int o.Hit_rate.hits) point.outcomes

let max_stderr_seconds points =
  List.fold_left
    (fun acc p ->
      List.fold_left
        (fun acc o -> Float.max acc (Hit_rate.stderr_makespan o /. 1e6))
        acc p.outcomes)
    0. points

(** The reproduced figures of the paper's evaluation (Sections 6 and 7).

    Each function returns one (or two) {!Report.figure}s carrying the exact
    series the paper plots; the bench harness prints and CSV-dumps them.
    Expected shapes are spelled out in DESIGN.md and checked loosely by the
    integration tests. *)

val fig1_small_grids : Config.t -> Report.figure
(** Average completion time (s) of a 1 MB broadcast, 2-10 clusters, all
    seven heuristics (paper Figure 1). *)

val fig2_large_grids : Config.t -> Report.figure
(** Same, 5-50 clusters in steps of 5 (paper Figure 2). *)

val fig3_ecef_zoom : Config.t -> Report.figure
(** ECEF-like heuristics only, 5-50 clusters (paper Figure 3). *)

val fig4_hit_rate : Config.t -> Report.figure * Report.figure
(** Hit counts against the per-iteration global minimum for the four
    ECEF-like heuristics (paper Figure 4).  Returns the figure under the
    paper's literal completion model ([After_sends]) and under the
    [Overlapped] model; the paper's qualitative claim (ECEF-LAT keeps a
    high, roughly constant hit rate while the min-based variants decay) is
    reproduced by the latter — see EXPERIMENTS.md for the discussion. *)

val fig5_predicted : Config.t -> Report.figure
(** Predicted completion time vs message size (0.25-4.5 MB) on the
    Table 3 GRID5000 topology, all heuristics (paper Figure 5). *)

val fig6_measured : Config.t -> Report.figure
(** "Measured" (DES with noise + scheduling overhead) completion times,
    including the grid-unaware binomial "Default LAM" curve (paper
    Figure 6). *)

val message_sizes : int list
(** The x axis of Figures 5/6: 0.25 MB to 4.5 MB. *)

val grid5000_root : int

(** Piecewise-linear functions over message sizes.

    pLogP captures the gap [g(m)] as a table of measured points rather than a
    closed form, so that protocol switches (eager/rendezvous) show up as
    slope changes.  This module stores the table and interpolates. *)

type t
(** Immutable piecewise-linear function from message size (bytes) to a float
    value (microseconds in all uses in this repository). *)

val of_points : (int * float) list -> t
(** Builds from (size, value) samples.  Points are sorted; duplicate sizes
    keep the last value.
    @raise Invalid_argument on an empty list or a negative size. *)

val linear : intercept:float -> slope:float -> t
(** The closed form [fun m -> intercept +. slope *. m] as a two-point table
    (evaluated exactly thanks to extrapolation). *)

val eval : t -> int -> float
(** [eval f m]: linear interpolation between surrounding samples; constant
    extrapolation of the first segment's value below the smallest sample;
    linear extrapolation with the last segment's slope above the largest.
    A single-point table is a constant function.
    @raise Invalid_argument if [m < 0]. *)

val points : t -> (int * float) list
(** The (sorted) defining samples. *)

val map : (float -> float) -> t -> t
(** Pointwise transform of the sample values (e.g. scaling by a noise
    factor).  Interpolation happens on transformed values. *)

val add : t -> t -> t
(** Pointwise sum, sampled at the union of both break sets. *)

val scale : float -> t -> t

val is_monotonic : t -> bool
(** True iff sample values never decrease with size (sanity check for
    measured gap tables). *)

val pp : Format.formatter -> t -> unit

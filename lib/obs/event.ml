type heap_op = Rescore | Drop

type t =
  | Send_start of {
      src : int;
      dst : int;
      time : float;
      msg : int;
      intra : bool;
      try_no : int;
    }
  | Send_end of { src : int; dst : int; time : float; arrival : float }
  | Arrival of { src : int; dst : int; time : float }
  | Ack of { src : int; dst : int; time : float }
  | Retransmit of { src : int; dst : int; time : float; try_no : int; rto : float }
  | Give_up of { src : int; dst : int; time : float }
  | Circuit_open of { src : int; dst : int; time : float }
  | Circuit_close of { src : int; dst : int; time : float }
  | Reroute of { dst : int; old_parent : int; new_parent : int; time : float }
  | Timer_set of { id : int; time : float; fire_at : float }
  | Timer_fire of { id : int; time : float }
  | Timer_cancel of { id : int; time : float }
  | Msg_send of { src : int; dst : int; tag : int; size : int; time : float }
  | Msg_recv of { src : int; dst : int; tag : int; time : float }
  | Recv_timeout of { rank : int; time : float }
  | Policy_round of { round : int; src : int; dst : int }
  | Heap_op of { op : heap_op; receiver : int; sender : int }
  | Cache_hit of { key : string }
  | Cache_miss of { key : string }
  | Strategy_selected of { name : string; predicted : float }
  | Repair_splice of { crashed : int; replanned : int }
  | Shed of { rid : int; priority : string; reason : string; time : float }
  | Retry of { rid : int; attempt : int; time : float }
  | Deadline_miss of { rid : int; deadline : float; finish : float }
  | Counter of { name : string; value : int }
  | Span_start of { name : string; time : float }
  | Span_end of { name : string; time : float }
  | Tagged of { sid : int; event : t }

let rec untag = function Tagged { event; _ } -> untag event | e -> e
let sid = function Tagged { sid; _ } -> Some sid | _ -> None
let tag ~sid event = Tagged { sid; event = untag event }

(* --- writer ------------------------------------------------------------ *)

(* %.17g round-trips every finite float64 exactly through float_of_string.
   Infinities print as "inf"/"-inf" (not strict JSON, but no simulated
   quantity we serialise is infinite and the bundled reader accepts them). *)
let add_float buf f = Printf.bprintf buf "%.17g" f

let add_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Printf.bprintf buf "\\u%04x" (Char.code c)
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

type field = I of string * int | F of string * float | S of string * string | B of string * bool

let obj ev fields =
  let buf = Buffer.create 96 in
  Printf.bprintf buf "{\"ev\":%S" ev;
  List.iter
    (fun f ->
      Buffer.add_char buf ',';
      match f with
      | I (k, v) -> Printf.bprintf buf "%S:%d" k v
      | F (k, v) ->
          Printf.bprintf buf "%S:" k;
          add_float buf v
      | S (k, v) ->
          Printf.bprintf buf "%S:" k;
          add_string buf v
      | B (k, v) -> Printf.bprintf buf "%S:%b" k v)
    fields;
  Buffer.add_char buf '}';
  Buffer.contents buf

let heap_op_name = function Rescore -> "rescore" | Drop -> "drop"

let rec to_json = function
  | Tagged { sid; event } ->
      (* The correlation id rides as one extra flat field on the inner
         event's object — the reader (and any field-tolerant consumer)
         sees the same shape, plus "sid". *)
      let inner = to_json (untag event) in
      String.sub inner 0 (String.length inner - 1) ^ Printf.sprintf ",\"sid\":%d}" sid
  | e -> to_json_untagged e

and to_json_untagged = function
  | Send_start { src; dst; time; msg; intra; try_no } ->
      obj "send_start"
        [ I ("src", src); I ("dst", dst); F ("t", time); I ("msg", msg);
          B ("intra", intra); I ("try", try_no) ]
  | Send_end { src; dst; time; arrival } ->
      obj "send_end"
        [ I ("src", src); I ("dst", dst); F ("t", time); F ("arrival", arrival) ]
  | Arrival { src; dst; time } ->
      obj "arrival" [ I ("src", src); I ("dst", dst); F ("t", time) ]
  | Ack { src; dst; time } -> obj "ack" [ I ("src", src); I ("dst", dst); F ("t", time) ]
  | Retransmit { src; dst; time; try_no; rto } ->
      obj "retransmit"
        [ I ("src", src); I ("dst", dst); F ("t", time); I ("try", try_no);
          F ("rto", rto) ]
  | Give_up { src; dst; time } ->
      obj "give_up" [ I ("src", src); I ("dst", dst); F ("t", time) ]
  | Circuit_open { src; dst; time } ->
      obj "circuit_open" [ I ("src", src); I ("dst", dst); F ("t", time) ]
  | Circuit_close { src; dst; time } ->
      obj "circuit_close" [ I ("src", src); I ("dst", dst); F ("t", time) ]
  | Reroute { dst; old_parent; new_parent; time } ->
      obj "reroute"
        [ I ("dst", dst); I ("old", old_parent); I ("new", new_parent); F ("t", time) ]
  | Timer_set { id; time; fire_at } ->
      obj "timer_set" [ I ("id", id); F ("t", time); F ("fire_at", fire_at) ]
  | Timer_fire { id; time } -> obj "timer_fire" [ I ("id", id); F ("t", time) ]
  | Timer_cancel { id; time } -> obj "timer_cancel" [ I ("id", id); F ("t", time) ]
  | Msg_send { src; dst; tag; size; time } ->
      obj "msg_send"
        [ I ("src", src); I ("dst", dst); I ("tag", tag); I ("size", size); F ("t", time) ]
  | Msg_recv { src; dst; tag; time } ->
      obj "msg_recv" [ I ("src", src); I ("dst", dst); I ("tag", tag); F ("t", time) ]
  | Recv_timeout { rank; time } -> obj "recv_timeout" [ I ("rank", rank); F ("t", time) ]
  | Policy_round { round; src; dst } ->
      obj "policy_round" [ I ("round", round); I ("src", src); I ("dst", dst) ]
  | Heap_op { op; receiver; sender } ->
      obj "heap_op"
        [ S ("op", heap_op_name op); I ("receiver", receiver); I ("sender", sender) ]
  | Cache_hit { key } -> obj "cache_hit" [ S ("key", key) ]
  | Cache_miss { key } -> obj "cache_miss" [ S ("key", key) ]
  | Strategy_selected { name; predicted } ->
      obj "strategy_selected" [ S ("name", name); F ("predicted", predicted) ]
  | Repair_splice { crashed; replanned } ->
      obj "repair_splice" [ I ("crashed", crashed); I ("replanned", replanned) ]
  | Shed { rid; priority; reason; time } ->
      obj "shed"
        [ I ("rid", rid); S ("priority", priority); S ("reason", reason); F ("t", time) ]
  | Retry { rid; attempt; time } ->
      obj "retry" [ I ("rid", rid); I ("attempt", attempt); F ("t", time) ]
  | Deadline_miss { rid; deadline; finish } ->
      obj "deadline_miss" [ I ("rid", rid); F ("deadline", deadline); F ("finish", finish) ]
  | Counter { name; value } -> obj "counter" [ S ("name", name); I ("value", value) ]
  | Span_start { name; time } -> obj "span_start" [ S ("name", name); F ("t", time) ]
  | Span_end { name; time } -> obj "span_end" [ S ("name", name); F ("t", time) ]
  | Tagged _ as e -> to_json e

(* --- reader ------------------------------------------------------------ *)

(* A minimal parser for the flat one-object-per-line JSON the writer emits:
   string, integer, float and boolean values only, no nesting. *)

type scalar = Int of int | Float of float | Str of string | Bool of bool

exception Bad of string

let parse_fields line =
  let n = String.length line in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some line.[!pos] else None in
  let skip_ws () =
    while !pos < n && (match line.[!pos] with ' ' | '\t' | '\r' | '\n' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    skip_ws ();
    if peek () = Some c then incr pos else fail (Printf.sprintf "expected %c" c)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = line.[!pos] in
      incr pos;
      if c = '"' then Buffer.contents buf
      else if c = '\\' then begin
        (if !pos >= n then fail "truncated escape");
        let e = line.[!pos] in
        incr pos;
        (match e with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | '/' -> Buffer.add_char buf '/'
        | 'u' ->
            if !pos + 4 > n then fail "truncated \\u escape";
            let hex = String.sub line !pos 4 in
            pos := !pos + 4;
            let code =
              try int_of_string ("0x" ^ hex) with Failure _ -> fail "bad \\u escape"
            in
            if code > 0xff then fail "\\u escape beyond latin-1"
            else Buffer.add_char buf (Char.chr code)
        | _ -> fail "unknown escape");
        go ()
      end
      else begin
        Buffer.add_char buf c;
        go ()
      end
    in
    go ()
  in
  let parse_scalar () =
    skip_ws ();
    match peek () with
    | Some '"' -> Str (parse_string ())
    | Some ('t' | 'f') ->
        if n - !pos >= 4 && String.sub line !pos 4 = "true" then begin
          pos := !pos + 4;
          Bool true
        end
        else if n - !pos >= 5 && String.sub line !pos 5 = "false" then begin
          pos := !pos + 5;
          Bool false
        end
        else fail "bad literal"
    | Some _ ->
        let start = !pos in
        while
          !pos < n
          && match line.[!pos] with ',' | '}' | ' ' | '\t' -> false | _ -> true
        do
          incr pos
        done;
        let tok = String.sub line start (!pos - start) in
        if tok = "" then fail "empty value";
        (match int_of_string_opt tok with
        (* "-0" must stay a float: int_of_string would drop the sign bit *)
        | Some i when tok <> "-0" -> Int i
        | _ -> (
            match float_of_string_opt tok with
            | Some f -> Float f
            | None -> fail (Printf.sprintf "bad number %S" tok)))
    | None -> fail "missing value"
  in
  expect '{';
  let fields = ref [] in
  skip_ws ();
  if peek () = Some '}' then incr pos
  else begin
    let continue = ref true in
    while !continue do
      let key = (skip_ws (); parse_string ()) in
      expect ':';
      let v = parse_scalar () in
      fields := (key, v) :: !fields;
      skip_ws ();
      match peek () with
      | Some ',' -> incr pos
      | Some '}' ->
          incr pos;
          continue := false
      | _ -> fail "expected , or }"
    done
  end;
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  List.rev !fields

let find fields k =
  match List.assoc_opt k fields with
  | Some v -> v
  | None -> raise (Bad (Printf.sprintf "missing field %S" k))

let geti fields k =
  match find fields k with
  | Int i -> i
  | _ -> raise (Bad (Printf.sprintf "field %S: expected int" k))

let getf fields k =
  match find fields k with
  | Float f -> f
  | Int i -> float_of_int i
  | _ -> raise (Bad (Printf.sprintf "field %S: expected number" k))

let gets fields k =
  match find fields k with
  | Str s -> s
  | _ -> raise (Bad (Printf.sprintf "field %S: expected string" k))

let getb fields k =
  match find fields k with
  | Bool b -> b
  | _ -> raise (Bad (Printf.sprintf "field %S: expected bool" k))

let of_json line =
  match
    let fields = parse_fields (String.trim line) in
    let ev = gets fields "ev" in
    let wrap event =
      match List.assoc_opt "sid" fields with
      | None -> event
      | Some (Int sid) -> Tagged { sid; event }
      | Some _ -> raise (Bad "field \"sid\": expected int")
    in
    wrap
      (match ev with
    | "send_start" ->
        Send_start
          {
            src = geti fields "src";
            dst = geti fields "dst";
            time = getf fields "t";
            msg = geti fields "msg";
            intra = getb fields "intra";
            try_no = geti fields "try";
          }
    | "send_end" ->
        Send_end
          {
            src = geti fields "src";
            dst = geti fields "dst";
            time = getf fields "t";
            arrival = getf fields "arrival";
          }
    | "arrival" ->
        Arrival { src = geti fields "src"; dst = geti fields "dst"; time = getf fields "t" }
    | "ack" ->
        Ack { src = geti fields "src"; dst = geti fields "dst"; time = getf fields "t" }
    | "retransmit" ->
        Retransmit
          {
            src = geti fields "src";
            dst = geti fields "dst";
            time = getf fields "t";
            try_no = geti fields "try";
            rto = getf fields "rto";
          }
    | "give_up" ->
        Give_up { src = geti fields "src"; dst = geti fields "dst"; time = getf fields "t" }
    | "circuit_open" ->
        Circuit_open
          { src = geti fields "src"; dst = geti fields "dst"; time = getf fields "t" }
    | "circuit_close" ->
        Circuit_close
          { src = geti fields "src"; dst = geti fields "dst"; time = getf fields "t" }
    | "reroute" ->
        Reroute
          {
            dst = geti fields "dst";
            old_parent = geti fields "old";
            new_parent = geti fields "new";
            time = getf fields "t";
          }
    | "timer_set" ->
        Timer_set
          { id = geti fields "id"; time = getf fields "t"; fire_at = getf fields "fire_at" }
    | "timer_fire" -> Timer_fire { id = geti fields "id"; time = getf fields "t" }
    | "timer_cancel" -> Timer_cancel { id = geti fields "id"; time = getf fields "t" }
    | "msg_send" ->
        Msg_send
          {
            src = geti fields "src";
            dst = geti fields "dst";
            tag = geti fields "tag";
            size = geti fields "size";
            time = getf fields "t";
          }
    | "msg_recv" ->
        Msg_recv
          {
            src = geti fields "src";
            dst = geti fields "dst";
            tag = geti fields "tag";
            time = getf fields "t";
          }
    | "recv_timeout" -> Recv_timeout { rank = geti fields "rank"; time = getf fields "t" }
    | "policy_round" ->
        Policy_round
          { round = geti fields "round"; src = geti fields "src"; dst = geti fields "dst" }
    | "heap_op" ->
        let op =
          match gets fields "op" with
          | "rescore" -> Rescore
          | "drop" -> Drop
          | other -> raise (Bad (Printf.sprintf "unknown heap op %S" other))
        in
        Heap_op { op; receiver = geti fields "receiver"; sender = geti fields "sender" }
    | "cache_hit" -> Cache_hit { key = gets fields "key" }
    | "cache_miss" -> Cache_miss { key = gets fields "key" }
    | "strategy_selected" ->
        Strategy_selected { name = gets fields "name"; predicted = getf fields "predicted" }
    | "repair_splice" ->
        Repair_splice
          { crashed = geti fields "crashed"; replanned = geti fields "replanned" }
    | "shed" ->
        Shed
          {
            rid = geti fields "rid";
            priority = gets fields "priority";
            reason = gets fields "reason";
            time = getf fields "t";
          }
    | "retry" ->
        Retry
          { rid = geti fields "rid"; attempt = geti fields "attempt"; time = getf fields "t" }
    | "deadline_miss" ->
        Deadline_miss
          {
            rid = geti fields "rid";
            deadline = getf fields "deadline";
            finish = getf fields "finish";
          }
    | "counter" -> Counter { name = gets fields "name"; value = geti fields "value" }
    | "span_start" -> Span_start { name = gets fields "name"; time = getf fields "t" }
    | "span_end" -> Span_end { name = gets fields "name"; time = getf fields "t" }
    | other -> raise (Bad (Printf.sprintf "unknown event %S" other)))
  with
  | event -> Ok event
  | exception Bad msg -> Error msg

let pp ppf e = Format.pp_print_string ppf (to_json e)
let equal (a : t) (b : t) = a = b

(** Deterministic pseudo-random number generation.

    The simulations of the paper average 10000 independent draws of grid
    parameters; reproducibility of a whole experiment therefore hinges on a
    seedable, splittable generator.  This module implements SplitMix64
    (Steele, Lea & Flood, OOPSLA 2014): tiny state, excellent statistical
    quality for simulation purposes, and O(1) splitting so that each
    iteration of an experiment can derive an independent stream. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator from a 63-bit seed.  Equal seeds yield
    equal streams. *)

val split : t -> t
(** [split t] returns a fresh generator statistically independent from the
    future of [t], advancing [t]. *)

val copy : t -> t
(** [copy t] duplicates the current state without advancing [t]. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  @raise Invalid_argument if
    [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive.
    @raise Invalid_argument if [hi < lo]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val float_in : t -> float -> float -> float
(** [float_in t lo hi] is uniform in [\[lo, hi)].
    @raise Invalid_argument if [hi < lo]. *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p].  Always consumes exactly
    one draw, even for [p = 0.] or [p = 1.], so seeded streams stay aligned
    across fault-draw sites.  @raise Invalid_argument if [p] is outside
    [\[0, 1\]]. *)

val gaussian : ?mu:float -> ?sigma:float -> t -> float
(** Normal deviate via Box-Muller.  Defaults: [mu = 0.], [sigma = 1.]. *)

val lognormal : ?mu:float -> ?sigma:float -> t -> float
(** [exp (gaussian ~mu ~sigma t)]: multiplicative noise as observed on real
    network round-trips. *)

val exponential : t -> float -> float
(** [exponential t lambda] draws from Exp(lambda).
    @raise Invalid_argument if [lambda <= 0.]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniformly random element.  @raise Invalid_argument on empty array. *)

val permutation : t -> int -> int array
(** [permutation t n] is a uniformly random permutation of [0..n-1]. *)

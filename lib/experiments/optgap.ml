module Instance = Gridb_sched.Instance
module Schedule = Gridb_sched.Schedule
module Engine = Gridb_sched.Engine
module Policy = Gridb_sched.Policy
module Bounds = Gridb_sched.Bounds
module Generators = Gridb_topology.Generators
module Exact = Gridb_opt.Exact
module Traff = Gridb_opt.Traff
module Rng = Gridb_util.Rng

type topology = Table2 | Random | Multilevel | Homogeneous

let topologies =
  [
    ("table2", Table2);
    ("random", Random);
    ("multilevel", Multilevel);
    ("homogeneous", Homogeneous);
  ]

let instance topo ~seed ~n ~msg =
  if n < 2 then invalid_arg "Optgap.instance: n < 2";
  let rng = Rng.create seed in
  match topo with
  | Table2 -> Instance.random ~rng ~n Instance.table2_ranges
  | Random ->
      let grid = Generators.uniform_random ~rng ~n Generators.default_random_spec in
      Instance.of_grid ~root:0 ~msg grid
  | Multilevel ->
      if n mod 2 <> 0 then invalid_arg "Optgap.instance: Multilevel needs an even n";
      let spec =
        { Generators.default_multilevel_spec with sites = n / 2; clusters_per_site = 2 }
      in
      Instance.of_grid ~root:0 ~msg (Generators.multilevel ~rng spec)
  | Homogeneous ->
      let r = Instance.table2_ranges in
      let draw (lo, hi) = Rng.float_in rng lo hi in
      Traff.instance
        {
          Traff.n;
          root = 0;
          latency = draw r.Instance.latency_us;
          gap = draw r.Instance.gap_us;
          intra = draw r.Instance.intra_us;
        }

type sample = {
  opt : float;
  bound_ratio : float;
  expanded : int;
  gaps : (string * float) list;
  traff_agrees : bool option;
}

let feq a b =
  a = b || Float.abs (a -. b) <= 1e-9 *. Float.max (Float.abs a) (Float.abs b)

let sample topo ~seed ~n ~msg =
  let inst = instance topo ~seed ~n ~msg in
  let cert = Exact.solve inst in
  let opt = cert.Exact.makespan in
  let gaps =
    List.map
      (fun p -> (Policy.name p, Schedule.makespan inst (Engine.run p inst) /. opt))
      Policy.all
  in
  let traff_agrees =
    match topo with
    | Table2 | Random | Multilevel -> None
    | Homogeneous ->
        let params =
          match Traff.homogeneous inst with Some p -> p | None -> assert false
        in
        Some (feq (Traff.makespan params) opt)
  in
  {
    opt;
    bound_ratio = opt /. Bounds.combined inst;
    expanded = cert.Exact.stats.Exact.expanded;
    gaps;
    traff_agrees;
  }

module Instance = Gridb_sched.Instance
module Schedule = Gridb_sched.Schedule

type event = {
  round : int;
  src : int;
  dst : int;
  start : float;
  arrival : float;
}

type t = {
  root : int;
  n : int;
  events : event list;
  makespan : float;
}

let of_broadcast inst schedule =
  (match Schedule.validate inst schedule with
  | Ok () -> ()
  | Error reason -> invalid_arg ("Reduce_sched.of_broadcast: " ^ reason));
  let horizon = Schedule.makespan ~model:Schedule.After_sends inst schedule in
  (* Mirror: a broadcast transmission occupying [start, arrival] becomes a
     reduce transmission occupying [horizon - arrival, horizon - start],
     flowing dst -> src.  Rounds renumber in the new time order. *)
  let mirrored =
    List.rev_map
      (fun e ->
        {
          round = 0;
          src = e.Schedule.dst;
          dst = e.Schedule.src;
          start = horizon -. e.Schedule.arrival;
          arrival = horizon -. e.Schedule.start;
        })
      schedule.Schedule.events
  in
  let ordered =
    List.stable_sort (fun a b -> Float.compare a.start b.start) mirrored
    |> List.mapi (fun i e -> { e with round = i })
  in
  { root = schedule.Schedule.root; n = schedule.Schedule.n; events = ordered; makespan = horizon }

let makespan_equals_broadcast inst schedule =
  let r = of_broadcast inst schedule in
  let b = Schedule.makespan ~model:Schedule.After_sends inst schedule in
  Float.abs (r.makespan -. b) <= 1e-9 *. Float.max 1. b

let best_heuristic inst heuristics =
  match heuristics with
  | [] -> invalid_arg "Reduce_sched.best_heuristic: empty list"
  | hs ->
      let scored =
        List.map
          (fun h ->
            let r = of_broadcast inst (Gridb_sched.Heuristics.run h inst) in
            (h, r))
          hs
      in
      List.fold_left
        (fun (bh, br) (h, r) -> if r.makespan < br.makespan then (h, r) else (bh, br))
        (List.hd scored) (List.tl scored)

type order = Min | Max

type t = {
  order : order;
  mutable scores : float array;  (* slots [0, size) are live *)
  mutable ids : int array;
  mutable size : int;
}

let create ?(capacity = 16) ~order () =
  if capacity < 1 then invalid_arg "Score_heap.create: capacity < 1";
  {
    order;
    scores = Array.make capacity 0.;
    ids = Array.make capacity 0;
    size = 0;
  }

let length t = t.size
let is_empty t = t.size = 0
let clear t = t.size <- 0

(* Strict "a sorts before b" under the heap order; equal scores break
   towards the smaller id in both orders so drain sequences are fully
   deterministic. *)
let before t sa ia sb ib =
  match t.order with
  | Min -> sa < sb || (sa = sb && ia < ib)
  | Max -> sa > sb || (sa = sb && ia < ib)

let grow t =
  let cap = Array.length t.scores in
  if t.size = cap then begin
    let ncap = 2 * cap in
    let nscores = Array.make ncap 0. and nids = Array.make ncap 0 in
    Array.blit t.scores 0 nscores 0 t.size;
    Array.blit t.ids 0 nids 0 t.size;
    t.scores <- nscores;
    t.ids <- nids
  end

let swap t i j =
  let s = t.scores.(i) and d = t.ids.(i) in
  t.scores.(i) <- t.scores.(j);
  t.ids.(i) <- t.ids.(j);
  t.scores.(j) <- s;
  t.ids.(j) <- d

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before t t.scores.(i) t.ids.(i) t.scores.(parent) t.ids.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let first = ref i in
  if l < t.size && before t t.scores.(l) t.ids.(l) t.scores.(!first) t.ids.(!first)
  then first := l;
  if r < t.size && before t t.scores.(r) t.ids.(r) t.scores.(!first) t.ids.(!first)
  then first := r;
  if !first <> i then begin
    swap t i !first;
    sift_down t !first
  end

let push t score id =
  grow t;
  t.scores.(t.size) <- score;
  t.ids.(t.size) <- id;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let top_score t =
  if t.size = 0 then invalid_arg "Score_heap.top_score: empty heap";
  t.scores.(0)

let top_id t =
  if t.size = 0 then invalid_arg "Score_heap.top_id: empty heap";
  t.ids.(0)

let second_score t =
  if t.size <= 1 then
    match t.order with Min -> infinity | Max -> neg_infinity
  else if t.size = 2 then t.scores.(1)
  else
    match t.order with
    | Min -> Float.min t.scores.(1) t.scores.(2)
    | Max -> Float.max t.scores.(1) t.scores.(2)

let drop_top t =
  if t.size = 0 then invalid_arg "Score_heap.drop_top: empty heap";
  t.size <- t.size - 1;
  if t.size > 0 then begin
    t.scores.(0) <- t.scores.(t.size);
    t.ids.(0) <- t.ids.(t.size);
    sift_down t 0
  end

let pop t =
  if t.size = 0 then None
  else begin
    let s = t.scores.(0) and id = t.ids.(0) in
    drop_top t;
    Some (s, id)
  end

let check_invariant t =
  let ok = ref true in
  for i = 1 to t.size - 1 do
    let p = (i - 1) / 2 in
    if before t t.scores.(i) t.ids.(i) t.scores.(p) t.ids.(p) then ok := false
  done;
  !ok

module Bank = struct
  (* [rows] independent fixed-capacity heaps in two shared flat arrays:
     row [r] owns slots [r*cap, r*cap + sizes.(r)).  Same sift algorithms
     and the same (score, id) tie-breaking as the growable heap above, so
     a bank row and a standalone heap fed the same operation sequence hold
     bit-identical slot layouts (the engine's differential tests compare
     [second_score], which reads slots 1 and 2 directly). *)
  type t = {
    order : order;
    rows : int;
    cap : int;
    scores : float array;
    ids : int array;
    sizes : int array;
  }

  let create ~rows ~cap ~order =
    if rows < 0 then invalid_arg "Score_heap.Bank.create: rows < 0";
    if cap < 1 then invalid_arg "Score_heap.Bank.create: cap < 1";
    {
      order;
      rows;
      cap;
      scores = Array.make (rows * cap) 0.;
      ids = Array.make (rows * cap) 0;
      sizes = Array.make rows 0;
    }

  let rows t = t.rows

  let check_row t r name =
    if r < 0 || r >= t.rows then invalid_arg ("Score_heap.Bank." ^ name ^ ": bad row")

  let size t r =
    check_row t r "size";
    t.sizes.(r)

  let is_empty t r =
    check_row t r "is_empty";
    t.sizes.(r) = 0

  let reset t r =
    check_row t r "reset";
    t.sizes.(r) <- 0

  let before t sa ia sb ib =
    match t.order with
    | Min -> sa < sb || (sa = sb && ia < ib)
    | Max -> sa > sb || (sa = sb && ia < ib)

  let swap t i j =
    let s = t.scores.(i) and d = t.ids.(i) in
    t.scores.(i) <- t.scores.(j);
    t.ids.(i) <- t.ids.(j);
    t.scores.(j) <- s;
    t.ids.(j) <- d

  (* Sifts work on slot indices relative to the row base. *)
  let rec sift_up t base i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if
        before t
          t.scores.(base + i)
          t.ids.(base + i)
          t.scores.(base + parent)
          t.ids.(base + parent)
      then begin
        swap t (base + i) (base + parent);
        sift_up t base parent
      end
    end

  let rec sift_down t base size i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let first = ref i in
    if
      l < size
      && before t
           t.scores.(base + l)
           t.ids.(base + l)
           t.scores.(base + !first)
           t.ids.(base + !first)
    then first := l;
    if
      r < size
      && before t
           t.scores.(base + r)
           t.ids.(base + r)
           t.scores.(base + !first)
           t.ids.(base + !first)
    then first := r;
    if !first <> i then begin
      swap t (base + i) (base + !first);
      sift_down t base size !first
    end

  let push t r score id =
    check_row t r "push";
    let size = t.sizes.(r) in
    if size = t.cap then invalid_arg "Score_heap.Bank.push: row full";
    let base = r * t.cap in
    t.scores.(base + size) <- score;
    t.ids.(base + size) <- id;
    t.sizes.(r) <- size + 1;
    sift_up t base size

  let top_score t r =
    check_row t r "top_score";
    if t.sizes.(r) = 0 then invalid_arg "Score_heap.Bank.top_score: empty row";
    t.scores.(r * t.cap)

  let top_id t r =
    check_row t r "top_id";
    if t.sizes.(r) = 0 then invalid_arg "Score_heap.Bank.top_id: empty row";
    t.ids.(r * t.cap)

  let second_score t r =
    check_row t r "second_score";
    let size = t.sizes.(r) in
    let base = r * t.cap in
    if size <= 1 then match t.order with Min -> infinity | Max -> neg_infinity
    else if size = 2 then t.scores.(base + 1)
    else
      match t.order with
      | Min -> Float.min t.scores.(base + 1) t.scores.(base + 2)
      | Max -> Float.max t.scores.(base + 1) t.scores.(base + 2)

  let drop_top t r =
    check_row t r "drop_top";
    let size = t.sizes.(r) in
    if size = 0 then invalid_arg "Score_heap.Bank.drop_top: empty row";
    let size = size - 1 in
    t.sizes.(r) <- size;
    if size > 0 then begin
      let base = r * t.cap in
      t.scores.(base) <- t.scores.(base + size);
      t.ids.(base) <- t.ids.(base + size);
      sift_down t base size 0
    end

  let check_invariant t r =
    check_row t r "check_invariant";
    let base = r * t.cap in
    let ok = ref true in
    for i = 1 to t.sizes.(r) - 1 do
      let p = (i - 1) / 2 in
      if
        before t
          t.scores.(base + i)
          t.ids.(base + i)
          t.scores.(base + p)
          t.ids.(base + p)
      then ok := false
    done;
    !ok
end

type shape =
  | Zero
  | Fold of { order : [ `Min | `Max ]; term : Instance.t -> int -> int -> float }
  | Dynamic

type t = { name : string; eval : State.t -> j:int -> float; shape : shape }

let edge inst j k =
  inst.Instance.gap.(j).(k) +. inst.Instance.latency.(j).(k)

(* Fold [term] over k in B \ {j}; 0. when j is the last member of B. *)
let fold_edges ~combine ~init ~term state j =
  let inst = State.instance state in
  let acc = ref init and seen = ref false in
  State.iter_b state (fun k ->
      if k <> j then begin
        seen := true;
        acc := combine !acc (term inst j k)
      end);
  if !seen then !acc else 0.

let none = { name = "none"; eval = (fun _ ~j:_ -> 0.); shape = Zero }

let min_edge =
  {
    name = "min-edge";
    eval = (fun state ~j -> fold_edges ~combine:Float.min ~init:infinity ~term:edge state j);
    shape = Fold { order = `Min; term = edge };
  }

let edge_plus_t inst j k = edge inst j k +. inst.Instance.intra.(k)

let min_edge_plus_t =
  {
    name = "min-edge+T";
    eval =
      (fun state ~j ->
        fold_edges ~combine:Float.min ~init:infinity ~term:edge_plus_t state j);
    shape = Fold { order = `Min; term = edge_plus_t };
  }

let max_edge_plus_t =
  {
    name = "max-edge+T";
    eval =
      (fun state ~j ->
        fold_edges ~combine:Float.max ~init:neg_infinity ~term:edge_plus_t state j);
    shape = Fold { order = `Max; term = edge_plus_t };
  }

let avg_latency_to_b =
  {
    name = "avg-latency-B";
    eval =
      (fun state ~j ->
        let inst = State.instance state in
        let sum = ref 0. and count = ref 0 in
        State.iter_b state (fun k ->
            if k <> j then begin
              sum := !sum +. inst.Instance.latency.(j).(k);
              incr count
            end);
        if !count = 0 then 0. else !sum /. float_of_int !count);
    shape = Dynamic;
  }

let avg_edge_a_b =
  {
    name = "avg-edge-AB";
    eval =
      (fun state ~j ->
        let inst = State.instance state in
        let sum = ref 0. and count = ref 0 in
        let accumulate a =
          State.iter_b state (fun k ->
              if k <> j then begin
                sum := !sum +. edge inst a k;
                incr count
              end)
        in
        State.iter_a state accumulate;
        accumulate j;
        if !count = 0 then 0. else !sum /. float_of_int !count);
    shape = Dynamic;
  }

let all =
  [ none; min_edge; min_edge_plus_t; max_edge_plus_t; avg_latency_to_b; avg_edge_a_b ]

let by_name name = List.find_opt (fun t -> t.name = name) all

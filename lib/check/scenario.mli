(** Fuzzable pipeline scenarios and their JSON reproducer format.

    A scenario is the complete, serialisable recipe for one end-to-end
    pipeline run: the seed everything derives from, the grid dimensions,
    the message size, root, policy, transport and fault spec — all kept as
    the {e strings} the CLI itself accepts, so a reproducer file doubles as
    a command line.  {!generate} draws scenarios for {!Fuzz};
    {!to_json}/{!of_json} is the reproducer codec (one flat JSON object per
    line, tolerant of unknown fields so {!Fuzz.write_reproducer} can attach
    the violation it recorded); {!shrink_candidates} is the ordered
    simplification menu greedy shrinking walks. *)

type t = {
  seed : int;  (** master seed; topology and fault streams derive from it *)
  n : int;  (** clusters *)
  msg : int;  (** message size, bytes *)
  root : int;  (** root cluster *)
  policy : string;  (** resolvable by {!Gridb_sched.Policy.by_name} *)
  transport : string;  (** parsed by {!Gridb_des.Exec.transport_of_string} *)
  faults : string;  (** parsed by {!Gridb_des.Faults.of_string} *)
  dynamics : string;  (** parsed by {!Gridb_des.Dynamics.of_string} *)
}

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val generate : Gridb_util.Rng.t -> t
(** One random scenario: [n] in 2-8, message size from a four-point menu,
    any of the seven paper policies plus a [Mixed] form, any transport,
    faults and dynamics each from a menu that is "none" about half the
    time. *)

val policy_menu : string array
(** The policy menu {!generate} draws from: {!Gridb_sched.Policy.names}
    verbatim, plus ["Mixed<ECEF-LA|ECEF-LAT@10>"] last — derived from the
    registry's shared name table, never hand-maintained. *)

(** {1 Derived pipeline inputs} *)

val grid : t -> Gridb_topology.Grid.t
(** The scenario's topology, drawn from a stream derived from [seed]
    (clusters of 1-8 machines so DES runs stay small). *)

val fault_seed : t -> int
(** Seed for {!Gridb_des.Faults.create}, derived from [seed] but distinct
    from the topology stream. *)

val perm_seed : t -> int
(** Seed for the relabeling law's permutation. *)

val dyn_seed : t -> int
(** Seed for {!Gridb_des.Dynamics.create} — the same [seed lxor 0x64796e]
    tag the experiment layer uses, distinct from the fault stream. *)

val service_seed : t -> int
(** Seed for the service family's {!Gridb_service.Workload} stream,
    distinct from all of the above. *)

val chaos_seed : t -> int
(** Seed for the chaos family's deadline/priority request stream, distinct
    from the service family's so the two request mixes never alias. *)

val opt_seed : t -> int
(** Seed for the opt family's homogeneous-instance draw ([seed lxor
    0x6f7074], "opt"), distinct from every other derived stream. *)

val policy : t -> (Gridb_sched.Policy.t, string) result
val transport : t -> (Gridb_des.Exec.transport, string) result
val faults_spec : t -> (Gridb_des.Faults.spec, string) result
val dynamics_spec : t -> (Gridb_des.Dynamics.spec, string) result

(** {1 Reproducer codec} *)

val to_json : ?extra:(string * string) list -> t -> string
(** One-line JSON object, ["format":"gridsched-check/1"] first.  [extra]
    appends further string fields (e.g. the violation) after the scenario
    fields. *)

val of_json : string -> (t, string) result
(** Parse one {!to_json} line.  Unknown fields are ignored; missing
    scenario fields, a wrong [format] tag or out-of-range values are
    errors.  Exception: a missing [dynamics] field reads as ["none"], so
    reproducers recorded before the field existed still load. *)

val string_field : key:string -> string -> string option
(** [string_field ~key line] extracts a top-level string field from a
    reproducer line without decoding the whole scenario — how {!Fuzz}
    reads back the recorded violation name. *)

(** {1 Shrinking} *)

val shrink_candidates : t -> t list
(** Strictly simpler variants, most aggressive first: drop dynamics, drop
    faults, fix the transport, fall back to FlatTree, re-root at 0, shrink
    [n] (to 2, then by 1, clamping the root), shrink the message, zero the
    seed.  Every candidate differs from the input, so greedy shrinking
    terminates. *)

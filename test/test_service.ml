(* Tests for the broadcast-as-a-service layer: topology fingerprints
   (stability, sensitivity), the memoized plan cache (hit identity,
   divergence invalidation, observability), the seeded workload generator,
   predicted-load admission control, the server's jobs-invariance, and the
   multi-session invariants of Gridb_check. *)

module Machines = Gridb_topology.Machines
module Grid = Gridb_topology.Grid
module Generators = Gridb_topology.Generators
module Fingerprint = Gridb_topology.Fingerprint
module Params = Gridb_plogp.Params
module Heuristics = Gridb_sched.Heuristics
module Instance = Gridb_sched.Instance
module Adaptive = Gridb_des.Adaptive
module Session = Gridb_des.Session
module Event = Gridb_obs.Event
module Sink = Gridb_obs.Sink
module Rng = Gridb_util.Rng
module Plan_cache = Gridb_service.Plan_cache
module Workload = Gridb_service.Workload
module Admission = Gridb_service.Admission
module Server = Gridb_service.Server
module I = Gridb_check.Invariant
module Scenario = Gridb_check.Scenario
module Run = Gridb_check.Run

let grid_of_seed ?(n = 4) seed =
  let spec = { Generators.default_random_spec with cluster_size = (1, 4) } in
  Generators.uniform_random ~rng:(Rng.create seed) ~n spec

let machines_of_seed ?n seed = Machines.expand (grid_of_seed ?n seed)

let fresh_schedule machines ~root ~msg ~policy =
  let h = Option.get (Heuristics.by_name policy) in
  Heuristics.run h (Instance.of_grid ~root ~msg (Machines.grid machines))

(* --- fingerprint ------------------------------------------------------- *)

let test_fingerprint_stable () =
  for seed = 0 to 9 do
    let g = grid_of_seed seed in
    let a = Fingerprint.of_machines (Machines.expand g) in
    let b = Fingerprint.of_machines (Machines.expand g) in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: same grid, same fingerprint" seed)
      true (Fingerprint.equal a b)
  done

let test_fingerprint_distinguishes_grids () =
  for seed = 0 to 9 do
    let a = Fingerprint.of_machines (machines_of_seed seed) in
    let b = Fingerprint.of_machines (machines_of_seed (seed + 1)) in
    Alcotest.(check bool)
      (Printf.sprintf "seeds %d vs %d differ" seed (seed + 1))
      false (Fingerprint.equal a b)
  done

let test_fingerprint_sensitive_to_perturbation () =
  for seed = 0 to 9 do
    let g = grid_of_seed seed in
    let base = Fingerprint.of_machines (Machines.expand g) in
    (* Nudge a single inter-cluster link by 0.01%: any bit-level parameter
       change must move the hash. *)
    let perturbed =
      Grid.map_links
        (fun i j p ->
          if i = 0 && j = 1 then Params.rescale ~gap_factor:1. ~latency_factor:1.0001 p
          else p)
        g
    in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: perturbed link moves the fingerprint" seed)
      false
      (Fingerprint.equal base (Fingerprint.of_machines (Machines.expand perturbed)))
  done

let test_fingerprint_to_string () =
  let fp = Fingerprint.of_machines (machines_of_seed 3) in
  let s = Fingerprint.to_string fp in
  Alcotest.(check int) "16 hex digits" 16 (String.length s);
  String.iter
    (fun c ->
      Alcotest.(check bool) "lowercase hex" true
        (match c with '0' .. '9' | 'a' .. 'f' -> true | _ -> false))
    s

(* --- plan cache -------------------------------------------------------- *)

let test_bucket_of_size () =
  List.iter
    (fun (msg, want) ->
      Alcotest.(check int) (Printf.sprintf "bucket of %d" msg) want
        (Plan_cache.bucket_of_size msg))
    [ (0, 64); (1, 64); (64, 64); (65, 128); (65_536, 65_536); (1_000_000, 1_048_576) ];
  Alcotest.check_raises "negative size"
    (Invalid_argument "Plan_cache.bucket_of_size: negative size") (fun () ->
      ignore (Plan_cache.bucket_of_size (-1)))

let test_cache_hit_returns_identical_plan () =
  let machines = machines_of_seed 11 in
  let fingerprint = Fingerprint.of_machines machines in
  let cache = Plan_cache.create () in
  let k = Plan_cache.key ~fingerprint ~root:1 ~msg:70_000 ~policy:"ECEF" in
  let compute () =
    fresh_schedule machines ~root:1 ~msg:(Plan_cache.bucket_of_size 70_000)
      ~policy:"ECEF"
  in
  let s1, kind1 = Plan_cache.lookup cache k ~compute in
  let s2, kind2 = Plan_cache.lookup cache k ~compute in
  Alcotest.(check bool) "first lookup misses" true (kind1 = `Miss);
  Alcotest.(check bool) "second lookup hits" true (kind2 = `Hit);
  Alcotest.(check bool) "cached plan is the stored one" true (s1 == s2);
  Alcotest.(check bool) "cached plan equals a fresh compute" true (s2 = compute ());
  let stats = Plan_cache.stats cache in
  Alcotest.(check int) "one hit" 1 stats.Plan_cache.hits;
  Alcotest.(check int) "one miss" 1 stats.Plan_cache.misses;
  Alcotest.(check int) "no invalidations" 0 stats.Plan_cache.invalidations;
  Alcotest.(check int) "one entry" 1 stats.Plan_cache.entries

let test_cache_key_buckets_msg () =
  let machines = machines_of_seed 11 in
  let fingerprint = Fingerprint.of_machines machines in
  let a = Plan_cache.key ~fingerprint ~root:0 ~msg:65_537 ~policy:"ECEF" in
  let b = Plan_cache.key ~fingerprint ~root:0 ~msg:100_000 ~policy:"ECEF" in
  let c = Plan_cache.key ~fingerprint ~root:0 ~msg:65_536 ~policy:"ECEF" in
  Alcotest.(check bool) "same bucket, same key" true (a = b);
  Alcotest.(check bool) "different bucket, different key" false (a = c)

(* Degrade three links of a 3-rank estimator to quality 2: mean drift
   3/9 = 0.33 > 0.25 forces a divergence recomputation. *)
let diverged_estimator () =
  let est = Adaptive.create ~n:3 () in
  List.iter
    (fun (src, dst) ->
      ignore (Adaptive.rto est ~src ~dst ~nominal:100. ~fallback:1_000.);
      ignore (Adaptive.on_sample est ~src ~dst ~rtt:200. ~retransmitted:false ~now:0.))
    [ (0, 1); (1, 2); (2, 0) ];
  est

let test_cache_divergence_invalidates () =
  let machines = machines_of_seed 12 ~n:3 in
  let fingerprint = Fingerprint.of_machines machines in
  let cache = Plan_cache.create () in
  let k = Plan_cache.key ~fingerprint ~root:0 ~msg:65_536 ~policy:"ECEF-LA" in
  let compute () =
    fresh_schedule machines ~root:0 ~msg:65_536 ~policy:"ECEF-LA"
  in
  (* Planned under nominal conditions (no estimator: snapshot = all 1.). *)
  let _, kind1 = Plan_cache.lookup cache k ~compute in
  Alcotest.(check bool) "miss" true (kind1 = `Miss);
  let est = diverged_estimator () in
  let _, kind2 = Plan_cache.lookup cache ~estimator:est k ~compute in
  Alcotest.(check bool) "drifted estimator invalidates" true (kind2 = `Invalidated);
  (* The recomputed entry snapshots the drifted matrix: same estimator
     state now reads as zero drift. *)
  let _, kind3 = Plan_cache.lookup cache ~estimator:est k ~compute in
  Alcotest.(check bool) "re-snapshot hits" true (kind3 = `Hit);
  let stats = Plan_cache.stats cache in
  Alcotest.(check int) "invalidations counted" 1 stats.Plan_cache.invalidations;
  (* Mild drift stays under the threshold: a fresh estimator with no
     samples reads quality 1. everywhere. *)
  let nominal = Adaptive.create ~n:3 () in
  let _, kind4 = Plan_cache.lookup cache ~estimator:nominal k ~compute in
  Alcotest.(check bool) "nominal estimator vs drifted snapshot invalidates again" true
    (kind4 = `Invalidated)

let test_cache_emits_events_and_counters () =
  let machines = machines_of_seed 13 in
  let fingerprint = Fingerprint.of_machines machines in
  let sink = Sink.memory () in
  let cache = Plan_cache.create ~obs:sink () in
  let k = Plan_cache.key ~fingerprint ~root:0 ~msg:64 ~policy:"FlatTree" in
  let compute () = fresh_schedule machines ~root:0 ~msg:64 ~policy:"FlatTree" in
  ignore (Plan_cache.lookup cache k ~compute);
  ignore (Plan_cache.lookup cache k ~compute);
  let events = Sink.events sink in
  let key = Plan_cache.key_string k in
  Alcotest.(check bool) "miss event" true
    (List.exists (function Event.Cache_miss { key = k' } -> k' = key | _ -> false) events);
  Alcotest.(check bool) "hit event" true
    (List.exists (function Event.Cache_hit { key = k' } -> k' = key | _ -> false) events);
  let last_counter name =
    List.fold_left
      (fun acc e ->
        match e with
        | Event.Counter { name = n; value } when n = name -> Some value
        | _ -> acc)
      None events
  in
  Alcotest.(check (option int)) "hits counter" (Some 1) (last_counter "plan_cache.hits");
  Alcotest.(check (option int)) "misses counter" (Some 1) (last_counter "plan_cache.misses")

let test_cache_clear () =
  let machines = machines_of_seed 14 in
  let fingerprint = Fingerprint.of_machines machines in
  let cache = Plan_cache.create () in
  let k = Plan_cache.key ~fingerprint ~root:0 ~msg:64 ~policy:"ECEF" in
  let compute () = fresh_schedule machines ~root:0 ~msg:64 ~policy:"ECEF" in
  ignore (Plan_cache.lookup cache k ~compute);
  Alcotest.(check bool) "entry present" true (Plan_cache.find cache k <> None);
  Plan_cache.clear cache;
  Alcotest.(check bool) "entry gone" true (Plan_cache.find cache k = None);
  Alcotest.(check int) "counters survive clear" 1
    (Plan_cache.stats cache).Plan_cache.misses

(* --- workload ---------------------------------------------------------- *)

let test_workload_deterministic () =
  let machines = machines_of_seed 20 in
  let a = Workload.generate ~seed:5 ~rate:5e-5 ~duration:1e6 machines in
  let b = Workload.generate ~seed:5 ~rate:5e-5 ~duration:1e6 machines in
  Alcotest.(check bool) "equal seeds, equal streams" true (a = b);
  let c = Workload.generate ~seed:6 ~rate:5e-5 ~duration:1e6 machines in
  Alcotest.(check bool) "different seed, different stream" false (a = c)

let test_workload_shape () =
  let machines = machines_of_seed 21 in
  let requests = Workload.generate ~seed:1 ~rate:1e-4 ~duration:1e6 machines in
  Alcotest.(check bool) "non-empty at this rate" true (requests <> []);
  List.iteri
    (fun i (r : Workload.request) ->
      Alcotest.(check int) "dense rid" i r.Workload.rid;
      Alcotest.(check bool) "arrival in (0, duration]" true
        (r.Workload.at > 0. && r.Workload.at <= 1e6))
    requests;
  let rec chronological = function
    | a :: (b : Workload.request) :: rest ->
        Alcotest.(check bool) "non-decreasing arrivals" true
          (a.Workload.at <= b.Workload.at);
        chronological (b :: rest)
    | _ -> ()
  in
  chronological requests

let test_workload_validation () =
  let machines = machines_of_seed 22 in
  Alcotest.check_raises "non-positive rate"
    (Invalid_argument "Workload.generate: rate must be positive") (fun () ->
      ignore (Workload.generate ~seed:0 ~rate:0. ~duration:1e6 machines));
  let bad_mix =
    {
      Workload.roots = [| 0 |];
      msgs = [| 64 |];
      policies = [| "NoSuchPolicy" |];
      deadlines = [| infinity |];
      high_frac = 0.;
    }
  in
  Alcotest.(check bool) "unknown policy rejected" true
    (try
       ignore (Workload.generate ~mix:bad_mix ~seed:0 ~rate:1e-5 ~duration:1e6 machines);
       false
     with Invalid_argument _ -> true)

let test_mix_round_trip () =
  let machines = machines_of_seed 22 in
  let round m =
    match Workload.mix_of_string machines (Workload.mix_to_string m) with
    | Ok m' -> m'
    | Error e -> Alcotest.failf "round trip of %S: %s" (Workload.mix_to_string m) e
  in
  let check_mix name m =
    Alcotest.(check bool) name true (round m = m)
  in
  check_mix "default mix round-trips" (Workload.default_mix machines);
  check_mix "chaotic mix round-trips"
    {
      Workload.roots = [| 0; 2 |];
      msgs = [| 65_536 |];
      policies = [| "ECEF" |];
      deadlines = [| 2e5; infinity |];
      high_frac = 0.25;
    };
  Alcotest.(check bool) "\"default\" is the default mix" true
    (Workload.mix_of_string machines "default"
    = Ok (Workload.default_mix machines))

let test_mix_errors_name_keys () =
  let machines = machines_of_seed 22 in
  let err s =
    match Workload.mix_of_string machines s with
    | Ok _ -> Alcotest.failf "accepted %S" s
    | Error e -> e
  in
  let contains hay needle =
    let lh = String.length hay and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
    go 0
  in
  let check_names s fragment =
    let e = err s in
    Alcotest.(check bool)
      (Printf.sprintf "%S error %S names %S" s e fragment)
      true (contains e fragment)
  in
  check_names "roots=x" "mix key \"roots\"";
  check_names "msgs=1|oops" "mix key \"msgs\"";
  check_names "deadlines=-5" "deadline must be positive";
  check_names "high=1.5" "mix key \"high\"";
  check_names "roots=99" "root cluster out of range";
  check_names "colour=blue" "unknown key";
  check_names "roots" "expected key=value"

(* --- admission --------------------------------------------------------- *)

let test_admission_concurrency_cap () =
  let a = Admission.create ~max_concurrent:2 () in
  let admit now =
    match Admission.decide a ~now ~predicted_makespan:100. with
    | Admission.Admit -> true
    | Admission.Reject _ -> false
  in
  Alcotest.(check bool) "first admitted" true (admit 0.);
  Alcotest.(check bool) "second admitted" true (admit 0.);
  Alcotest.(check bool) "third rejected at the cap" false (admit 0.);
  Alcotest.(check int) "two inflight" 2 (Admission.inflight a ~now:0.);
  (* Predicted finishes pass: slots free up. *)
  Alcotest.(check bool) "admitted again after drain" true (admit 200.);
  Alcotest.(check int) "one inflight after drain" 1 (Admission.inflight a ~now:200.)

let test_admission_backlog_budget () =
  (* Backlog = latest predicted finish minus now, judged on the queue as it
     stands (the candidate books its own finish only on admit). *)
  let a = Admission.create ~max_concurrent:100 ~max_backlog_us:250. () in
  let decide now predicted = Admission.decide a ~now ~predicted_makespan:predicted in
  Alcotest.(check bool) "empty queue admits" true (decide 0. 300. = Admission.Admit);
  Alcotest.(check bool) "backlog over budget rejects" true
    (match decide 0. 10. with Admission.Reject _ -> true | _ -> false);
  Alcotest.(check bool) "admits again once the backlog drains" true
    (decide 100. 10. = Admission.Admit)

let test_admission_boundary_exact_finish () =
  (* A predicted finish is exclusive: a session booked to finish at t has
     drained by an arrival at exactly t. *)
  let a = Admission.create ~max_concurrent:1 () in
  Alcotest.(check bool) "books the only slot" true
    (Admission.decide a ~now:0. ~predicted_makespan:100. = Admission.Admit);
  Alcotest.(check int) "inflight just before the finish" 1
    (Admission.inflight a ~now:99.999);
  Alcotest.(check int) "drained at exactly the predicted finish" 0
    (Admission.inflight a ~now:100.);
  Alcotest.(check bool) "arrival exactly at the finish admits" true
    (Admission.decide a ~now:100. ~predicted_makespan:50. = Admission.Admit)

let test_admission_boundary_exact_backlog () =
  (* The backlog budget is inclusive: rejection needs backlog strictly
     past it. *)
  let a = Admission.create ~max_concurrent:100 ~max_backlog_us:250. () in
  Alcotest.(check bool) "books a finish at 300" true
    (Admission.decide a ~now:0. ~predicted_makespan:300. = Admission.Admit);
  (match Admission.decide a ~now:40. ~predicted_makespan:10. with
  | Admission.Reject (Admission.Backlog b) ->
      Alcotest.(check (float 1e-9)) "reason carries the backlog" 260. b
  | other ->
      Alcotest.failf "backlog 260 > 250 should reject, got %s"
        (match other with Admission.Admit -> "Admit" | _ -> "other reason"));
  Alcotest.(check bool) "backlog exactly at the budget admits" true
    (Admission.decide a ~now:50. ~predicted_makespan:10. = Admission.Admit)

let test_admission_single_slot_drain_ordering () =
  (* max_concurrent = 1 forces strict alternation: each admit books a
     finish, every arrival before it bounces, the first at-or-after lands. *)
  let a = Admission.create ~max_concurrent:1 () in
  let outcomes =
    List.map
      (fun (now, predicted) ->
        match Admission.decide a ~now ~predicted_makespan:predicted with
        | Admission.Admit -> "admit"
        | Admission.Reject (Admission.Concurrency _) -> "full"
        | Admission.Reject _ -> "other")
      [ (0., 100.); (10., 5.); (99., 5.); (100., 50.); (149., 5.); (150., 10.) ]
  in
  Alcotest.(check (list string))
    "strict alternation through the single slot"
    [ "admit"; "full"; "full"; "admit"; "full"; "admit" ]
    outcomes

(* --- server ------------------------------------------------------------ *)

let server_fixture ?(seed = 30) ?(rate = 4e-5) () =
  let machines = machines_of_seed seed in
  let requests = Workload.generate ~seed ~rate ~duration:1e6 machines in
  (machines, requests)

let test_server_accounting () =
  let machines, requests = server_fixture () in
  let sink = Sink.memory () in
  let report = Server.run ~obs:sink machines requests in
  Alcotest.(check int) "one outcome per request" (List.length requests)
    (Array.length report.Server.outcomes);
  Alcotest.(check int) "admitted + rejected = requests" report.Server.requests
    (report.Server.admitted + report.Server.rejected);
  let stats = report.Server.cache_stats in
  Alcotest.(check int) "one cache lookup per request" report.Server.requests
    (stats.Plan_cache.hits + stats.Plan_cache.misses);
  (* No faults: every admitted session delivers its full population. *)
  Alcotest.(check int) "all admitted sessions deliver everyone"
    (report.Server.admitted * Machines.count machines)
    report.Server.delivered

let test_server_jobs_invariant () =
  let machines, requests = server_fixture ~seed:31 () in
  let lines jobs = Server.smoke_lines (Server.run ~jobs machines requests) in
  Alcotest.(check (list string)) "smoke lines identical at jobs 1 vs 4" (lines 1)
    (lines 4)

let test_server_multi_session_invariants () =
  let machines, requests = server_fixture ~seed:32 ~rate:8e-5 () in
  let n = Machines.count machines in
  let sink = Sink.memory () in
  let report = Server.run ~obs:sink machines requests in
  Alcotest.(check bool) "some concurrency in the fixture" true
    (report.Server.admitted >= 2);
  let events = Sink.events sink in
  (match I.sessions_nic_serialization ~n events with
  | Ok () -> ()
  | Error v -> Alcotest.failf "shared wire: %a" I.pp_violation v);
  let sessions = I.split_sessions events in
  Alcotest.(check int) "one tagged session per admitted request"
    report.Server.admitted (List.length sessions);
  List.iter
    (fun (sid, evs) ->
      Alcotest.(check bool)
        (Printf.sprintf "session %d untagged after split" sid)
        true
        (List.for_all (fun e -> Event.sid e = None) evs);
      match I.stream_receive_at_most_once ~n evs with
      | Ok () -> ()
      | Error v -> Alcotest.failf "session %d: %a" sid I.pp_violation v)
    sessions

let test_server_rejects_out_of_order () =
  let machines = machines_of_seed 33 in
  let r rid at =
    {
      Workload.rid;
      at;
      root = 0;
      msg = 64;
      policy = "ECEF";
      deadline = infinity;
      priority = Workload.Low;
    }
  in
  Alcotest.check_raises "out-of-order requests"
    (Invalid_argument "Server.run: requests not in arrival order") (fun () ->
      ignore (Server.run machines [ r 0 100.; r 1 50. ]))

(* --- zero-chaos regression pin ----------------------------------------- *)

(* The exact smoke rendering of the seed-30 fixture served with every
   default (no faults, no dynamics, no retries, no shedding, no deadlines).
   The resilience machinery must leave this byte-identical: any drift here
   means the zero-chaos identity broke.  Regenerate only on a deliberate
   output-format change. *)
let zero_chaos_golden =
  [
    "req 0   at=10392.2 root=0 msg=65536 policy=ECEF-LA cache=miss admitted delivered=11/11 makespan=47368.6";
    "req 1   at=13177.1 root=0 msg=65536 policy=ECEF-LA cache=hit admitted delivered=11/11 makespan=61537.0";
    "req 2   at=75788.1 root=2 msg=65536 policy=ECEF cache=miss admitted delivered=11/11 makespan=62384.7";
    "req 3   at=88923.1 root=2 msg=1000000 policy=ECEF cache=miss admitted delivered=11/11 makespan=1167354.5";
    "req 4   at=101168.3 root=2 msg=1000000 policy=ECEF-LA cache=miss admitted delivered=11/11 makespan=1726844.1";
    "req 5   at=103994.6 root=0 msg=65536 policy=ECEF-LA cache=hit admitted delivered=11/11 makespan=346074.8";
    "req 6   at=107536.2 root=0 msg=65536 policy=ECEF-LA cache=hit admitted delivered=11/11 makespan=364997.9";
    "req 7   at=111215.0 root=1 msg=1000000 policy=ECEF cache=miss admitted delivered=11/11 makespan=446694.3";
    "req 8   at=117473.1 root=2 msg=1000000 policy=ECEF cache=hit admitted delivered=11/11 makespan=2431371.6";
    "req 9   at=117710.2 root=2 msg=65536 policy=ECEF cache=hit admitted delivered=11/11 makespan=2443130.7";
    "req 10  at=147846.2 root=1 msg=65536 policy=ECEF cache=miss admitted delivered=11/11 makespan=414116.8";
    "req 11  at=169181.8 root=0 msg=1000000 policy=ECEF cache=miss admitted delivered=11/11 makespan=1133221.9";
    "req 12  at=220557.2 root=0 msg=65536 policy=ECEF-LA cache=hit admitted delivered=11/11 makespan=1082022.1";
    "req 13  at=221049.4 root=2 msg=1000000 policy=ECEF cache=hit admitted delivered=11/11 makespan=2496479.0";
    "req 14  at=268299.9 root=1 msg=1000000 policy=ECEF cache=hit admitted delivered=11/11 makespan=725471.9";
    "req 15  at=328618.0 root=1 msg=1000000 policy=ECEF-LA cache=miss admitted delivered=11/11 makespan=1300075.4";
    "req 16  at=352327.4 root=2 msg=1000000 policy=ECEF-LA cache=hit rejected (concurrency limit (8 in flight))";
    "req 17  at=361045.8 root=2 msg=65536 policy=ECEF cache=hit rejected (concurrency limit (8 in flight))";
    "req 18  at=429548.7 root=1 msg=1000000 policy=ECEF cache=hit rejected (concurrency limit (8 in flight))";
    "req 19  at=435801.3 root=2 msg=1000000 policy=ECEF-LA cache=hit rejected (concurrency limit (8 in flight))";
    "req 20  at=437134.2 root=0 msg=65536 policy=ECEF cache=miss rejected (concurrency limit (8 in flight))";
    "req 21  at=441574.1 root=1 msg=65536 policy=ECEF-LA cache=miss rejected (concurrency limit (8 in flight))";
    "req 22  at=465126.5 root=2 msg=1000000 policy=ECEF-LA cache=hit rejected (concurrency limit (8 in flight))";
    "req 23  at=465504.7 root=1 msg=65536 policy=ECEF cache=hit rejected (concurrency limit (8 in flight))";
    "req 24  at=508952.0 root=1 msg=65536 policy=ECEF-LA cache=hit admitted delivered=11/11 makespan=1123090.4";
    "req 25  at=518847.0 root=2 msg=65536 policy=ECEF cache=hit rejected (concurrency limit (8 in flight))";
    "req 26  at=528690.2 root=1 msg=1000000 policy=ECEF cache=hit rejected (concurrency limit (8 in flight))";
    "req 27  at=578369.4 root=2 msg=1000000 policy=ECEF-LA cache=hit admitted delivered=11/11 makespan=2293125.8";
    "req 28  at=578490.1 root=2 msg=1000000 policy=ECEF-LA cache=hit admitted delivered=11/11 makespan=2446971.8";
    "req 29  at=585230.6 root=1 msg=1000000 policy=ECEF-LA cache=hit admitted delivered=11/11 makespan=1153369.1";
    "req 30  at=590375.9 root=2 msg=65536 policy=ECEF-LA cache=miss admitted delivered=11/11 makespan=2422909.5";
    "req 31  at=605044.2 root=0 msg=1000000 policy=ECEF-LA cache=miss admitted delivered=11/11 makespan=1408270.7";
    "req 32  at=607139.0 root=0 msg=1000000 policy=ECEF cache=hit rejected (concurrency limit (8 in flight))";
    "req 33  at=634837.8 root=0 msg=65536 policy=ECEF cache=hit admitted delivered=11/11 makespan=1725223.2";
    "req 34  at=657733.1 root=0 msg=65536 policy=ECEF-LA cache=hit admitted delivered=11/11 makespan=1724792.7";
    "req 35  at=679590.1 root=2 msg=65536 policy=ECEF-LA cache=hit rejected (concurrency limit (8 in flight))";
    "req 36  at=767079.1 root=2 msg=65536 policy=ECEF-LA cache=hit admitted delivered=11/11 makespan=2246382.0";
    "req 37  at=844757.3 root=1 msg=1000000 policy=ECEF cache=hit admitted delivered=11/11 makespan=1505382.7";
    "req 38  at=846215.2 root=0 msg=1000000 policy=ECEF cache=hit admitted delivered=11/11 makespan=1692529.9";
    "req 39  at=881338.9 root=1 msg=65536 policy=ECEF cache=hit admitted delivered=11/11 makespan=1494807.7";
    "req 40  at=919870.9 root=1 msg=65536 policy=ECEF-LA cache=hit admitted delivered=11/11 makespan=1478740.4";
    "req 41  at=986326.7 root=0 msg=1000000 policy=ECEF cache=hit admitted delivered=11/11 makespan=1564882.9";
    "requests 42 admitted 30 rejected 12";
    "cache hits 30 misses 12 invalidations 0 entries 12 (hit rate 0.714)";
    "delivered ranks 330, mean session makespan 1350987.5 us, horizon 3034530.9 us";
  ]

let test_server_zero_chaos_golden () =
  let machines, requests = server_fixture () in
  let report = Server.run machines requests in
  Alcotest.(check bool) "zero-chaos run is not chaotic" false
    report.Server.chaotic;
  Alcotest.(check (list string)) "smoke lines pinned" zero_chaos_golden
    (Server.smoke_lines report)

(* --- resilience: retries, shedding, deadlines --------------------------- *)

let chaotic_mix machines =
  {
    (Workload.default_mix machines) with
    Workload.deadlines = [| 2e5; 2e6; infinity |];
    high_frac = 0.4;
  }

let chaotic_fixture ?(seed = 30) ?(rate = 4e-5) () =
  let machines = machines_of_seed seed in
  let requests =
    Workload.generate ~mix:(chaotic_mix machines) ~seed ~rate ~duration:1e6
      machines
  in
  (machines, requests)

let test_server_unknown_policy_rejected_per_request () =
  (* Satellite 1: an unknown policy must not abort the batch mid-replay —
     it becomes a per-request typed rejection and is never planned or
     charged to the cache. *)
  let machines, requests = server_fixture () in
  let requests =
    List.map
      (fun (r : Workload.request) ->
        if r.Workload.rid mod 5 = 2 then { r with Workload.policy = "NoSuchPolicy" }
        else r)
      requests
  in
  let report = Server.run machines requests in
  let invalid =
    List.length (List.filter (fun (r : Workload.request) -> r.Workload.policy = "NoSuchPolicy") requests)
  in
  Alcotest.(check int) "invalid counter" invalid report.Server.invalid;
  Array.iter
    (fun (o : Server.outcome) ->
      if o.Server.request.Workload.policy = "NoSuchPolicy" then begin
        (match o.Server.decision with
        | Admission.Reject (Admission.Bad_policy "NoSuchPolicy") -> ()
        | _ -> Alcotest.fail "unknown policy not rejected with Bad_policy");
        Alcotest.(check bool) "never planned" true (o.Server.cache = `Unplanned);
        Alcotest.(check int) "no session launched" 0 o.Server.attempts;
        Alcotest.(check bool) "no result" true (o.Server.result = None)
      end)
    report.Server.outcomes;
  let stats = report.Server.cache_stats in
  Alcotest.(check int) "invalid requests never charge the cache"
    (report.Server.requests - invalid)
    (stats.Plan_cache.hits + stats.Plan_cache.misses)

let test_server_retry_recovers_delivery () =
  let machines, requests = chaotic_fixture () in
  let faults = Gridb_des.Faults.v ~loss:0.45 () in
  let run retry = Server.run ~faults ~retry machines requests in
  let base = run Server.no_retry in
  let retried = run (Server.retry ~budget:2 ()) in
  Alcotest.(check bool) "fixture is lossy enough to leave gaps" true
    (base.Server.delivered < base.Server.admitted * Machines.count machines);
  Alcotest.(check int) "no requeues without a budget" 0 base.Server.requeues;
  Alcotest.(check bool) "retries happened" true (retried.Server.requeues > 0);
  Alcotest.(check bool) "union delivery never shrinks" true
    (retried.Server.delivered >= base.Server.delivered);
  let stats = retried.Server.cache_stats in
  Alcotest.(check int) "retry replanning charged to the cache"
    (retried.Server.requests - retried.Server.invalid + retried.Server.retry_lookups)
    (stats.Plan_cache.hits + stats.Plan_cache.misses);
  Array.iter
    (fun (o : Server.outcome) ->
      match o.Server.decision with
      | Admission.Admit ->
          Alcotest.(check bool) "attempts within budget" true
            (o.Server.attempts >= 1 && o.Server.attempts <= 3);
          let result = Option.get o.Server.result in
          Alcotest.(check bool) "union at least the final attempt" true
            (o.Server.delivered_union >= result.Session.delivered)
      | Admission.Reject _ ->
          Alcotest.(check int) "rejected requests launch nothing" 0
            o.Server.attempts)
    retried.Server.outcomes

let test_server_shedding_protects_high_priority () =
  let machines, requests = chaotic_fixture ~rate:8e-5 () in
  let admission =
    Admission.create ~shed:(Admission.shed ~watermark_us:2e5 ()) ()
  in
  let report = Server.run ~admission machines requests in
  Alcotest.(check bool) "watermark low enough to shed" true
    (report.Server.sheds > 0);
  Array.iter
    (fun (o : Server.outcome) ->
      match o.Server.decision with
      | Admission.Reject r when Admission.is_shed r ->
          Alcotest.(check bool) "only low-priority requests shed" true
            (o.Server.request.Workload.priority = Workload.Low)
      | _ -> ())
    report.Server.outcomes;
  Alcotest.(check int) "high-priority class never shed" 0
    report.Server.slo_high.Server.c_shed;
  Alcotest.(check int) "sheds all land in the low class"
    report.Server.sheds report.Server.slo_low.Server.c_shed;
  (* The SLO tables partition the report. *)
  let h = report.Server.slo_high and l = report.Server.slo_low in
  Alcotest.(check int) "class requests partition"
    report.Server.requests (h.Server.c_requests + l.Server.c_requests);
  Alcotest.(check int) "class admissions partition"
    report.Server.admitted (h.Server.c_admitted + l.Server.c_admitted)

let test_server_deadline_bookkeeping () =
  let machines, requests = chaotic_fixture () in
  let report = Server.run ~faults:(Gridb_des.Faults.v ~loss:0.3 ()) machines requests in
  let misses = ref 0 in
  Array.iter
    (fun (o : Server.outcome) ->
      let r = o.Server.request in
      (match o.Server.deadline_met with
      | None ->
          Alcotest.(check bool)
            "verdicts absent only without a deadline or admission" true
            (r.Workload.deadline = infinity || o.Server.result = None)
      | Some met ->
          Alcotest.(check bool) "verdict implies deadline and admission" true
            (Float.is_finite r.Workload.deadline && o.Server.result <> None);
          let on_time =
            (not (Float.is_nan o.Server.completion_us))
            && o.Server.completion_us -. r.Workload.at <= r.Workload.deadline
          in
          Alcotest.(check bool) "verdict recomputes from completion" met on_time;
          if not met then incr misses);
      if o.Server.attempts <= 1 then
        match o.Server.result with
        | Some result ->
            Alcotest.(check int) "single-attempt union = delivered"
              result.Session.delivered o.Server.delivered_union
        | None -> ())
    report.Server.outcomes;
  Alcotest.(check int) "deadline_misses counter" !misses
    report.Server.deadline_misses;
  Alcotest.(check bool) "fixture exercises both verdicts" true
    (!misses > 0 && report.Server.deadline_misses < report.Server.admitted)

let test_server_chaotic_jobs_invariant () =
  let machines, requests = chaotic_fixture ~seed:34 ~rate:6e-5 () in
  let lines jobs =
    let admission =
      Admission.create ~shed:(Admission.shed ~watermark_us:5e5 ()) ()
    in
    Server.smoke_lines
      (Server.run ~jobs ~admission
         ~faults:(Gridb_des.Faults.v ~loss:0.25 ~crash_rate:2e-7 ())
         ~dynamics:(Gridb_des.Dynamics.v ~drift_rate:2e-5 ~leave_rate:5e-8 ())
         ~retry:(Server.retry ~budget:2 ())
         ~seed:2006 machines requests)
  in
  let l1 = lines 1 in
  Alcotest.(check bool) "chaotic fixture is chaotic" true
    (List.exists (fun l -> String.length l >= 4 && String.sub l 0 4 = "slo ") l1);
  Alcotest.(check (list string)) "chaotic smoke lines identical at jobs 1 vs 4"
    l1 (lines 4)

(* --- multi-session invariants on synthetic streams --------------------- *)

let test_sessions_nic_serialization_catches_overlap () =
  (* Two sessions drive rank 0's NIC at overlapping times — exactly what a
     shared wire must prevent. *)
  let events =
    [
      Event.tag ~sid:0
        (Event.Send_start { src = 0; dst = 1; time = 0.; msg = 64; intra = false; try_no = 0 });
      Event.tag ~sid:0 (Event.Send_end { src = 0; dst = 1; time = 100.; arrival = 110. });
      Event.tag ~sid:1
        (Event.Send_start { src = 0; dst = 2; time = 50.; msg = 64; intra = false; try_no = 0 });
      Event.tag ~sid:1 (Event.Send_end { src = 0; dst = 2; time = 150.; arrival = 160. });
    ]
  in
  match I.sessions_nic_serialization ~n:3 events with
  | Ok () -> Alcotest.fail "overlapping cross-session injections not caught"
  | Error v ->
      Alcotest.(check string) "invariant name" "sessions-nic-serialization"
        v.I.invariant

let test_sessions_nic_serialization_allows_disjoint () =
  let events =
    [
      Event.tag ~sid:0
        (Event.Send_start { src = 0; dst = 1; time = 0.; msg = 64; intra = false; try_no = 0 });
      Event.tag ~sid:0 (Event.Send_end { src = 0; dst = 1; time = 100.; arrival = 110. });
      Event.tag ~sid:1
        (Event.Send_start { src = 0; dst = 2; time = 100.; msg = 64; intra = false; try_no = 0 });
      Event.tag ~sid:1 (Event.Send_end { src = 0; dst = 2; time = 200.; arrival = 210. });
      (* Untagged noise is ignored. *)
      Event.Counter { name = "plan_cache.hits"; value = 3 };
    ]
  in
  match I.sessions_nic_serialization ~n:3 events with
  | Ok () -> ()
  | Error v -> Alcotest.failf "disjoint injections flagged: %a" I.pp_violation v

let test_split_sessions_groups_and_orders () =
  let e t = Event.Arrival { src = 0; dst = 1; time = t } in
  let events =
    [ Event.tag ~sid:2 (e 1.); Event.tag ~sid:0 (e 2.); Event.tag ~sid:2 (e 3.);
      Event.Counter { name = "x"; value = 1 } ]
  in
  match I.split_sessions events with
  | [ (0, [ a ]); (2, [ b; c ]) ] ->
      Alcotest.(check bool) "sid 0 slice" true (a = e 2.);
      Alcotest.(check bool) "sid 2 order kept" true (b = e 1. && c = e 3.)
  | other ->
      Alcotest.failf "unexpected grouping: %d groups" (List.length other)

(* --- the service family end to end ------------------------------------- *)

let test_check_service_passes () =
  let sc =
    {
      Scenario.seed = 424_242;
      n = 4;
      msg = 65_536;
      root = 0;
      policy = "ECEF-LA";
      transport = "adaptive";
      faults = "none";
      dynamics = "none";
    }
  in
  match Run.check_service sc with
  | Ok () -> ()
  | Error v -> Alcotest.failf "service scenario: %a" I.pp_violation v

let test_check_chaos_passes () =
  let sc =
    {
      Scenario.seed = 424_242;
      n = 4;
      msg = 65_536;
      root = 0;
      policy = "ECEF-LA";
      transport = "adaptive";
      faults = "loss=0.3,crash=2e-7";
      dynamics = "drift=2e-5,churn=5e-8";
    }
  in
  match Run.check_chaos sc with
  | Ok () -> ()
  | Error v -> Alcotest.failf "chaos scenario: %a" I.pp_violation v

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "service"
    [
      ( "fingerprint",
        [
          quick "stable across expansions" test_fingerprint_stable;
          quick "distinguishes random grids" test_fingerprint_distinguishes_grids;
          quick "sensitive to one-link perturbation" test_fingerprint_sensitive_to_perturbation;
          quick "hex rendering" test_fingerprint_to_string;
        ] );
      ( "plan-cache",
        [
          quick "bucket_of_size" test_bucket_of_size;
          quick "hit returns the identical plan" test_cache_hit_returns_identical_plan;
          quick "keys bucket message sizes" test_cache_key_buckets_msg;
          quick "divergence invalidates" test_cache_divergence_invalidates;
          quick "events and counters" test_cache_emits_events_and_counters;
          quick "clear drops entries, keeps counters" test_cache_clear;
        ] );
      ( "workload",
        [
          quick "deterministic in the seed" test_workload_deterministic;
          quick "dense rids, chronological arrivals" test_workload_shape;
          quick "validation" test_workload_validation;
          quick "mix round-trips through its grammar" test_mix_round_trip;
          quick "mix parse errors name the key" test_mix_errors_name_keys;
        ] );
      ( "admission",
        [
          quick "concurrency cap" test_admission_concurrency_cap;
          quick "backlog budget" test_admission_backlog_budget;
          quick "arrival exactly at a predicted finish" test_admission_boundary_exact_finish;
          quick "backlog exactly at the budget" test_admission_boundary_exact_backlog;
          quick "single-slot drain ordering" test_admission_single_slot_drain_ordering;
        ] );
      ( "server",
        [
          quick "accounting" test_server_accounting;
          quick "jobs-invariant smoke lines" test_server_jobs_invariant;
          quick "multi-session invariants hold" test_server_multi_session_invariants;
          quick "out-of-order requests rejected" test_server_rejects_out_of_order;
          quick "zero-chaos smoke output pinned" test_server_zero_chaos_golden;
        ] );
      ( "resilience",
        [
          quick "unknown policy rejected per-request" test_server_unknown_policy_rejected_per_request;
          quick "retries recover delivery" test_server_retry_recovers_delivery;
          quick "shedding protects high priority" test_server_shedding_protects_high_priority;
          quick "deadline bookkeeping" test_server_deadline_bookkeeping;
          quick "chaotic smoke lines jobs-invariant" test_server_chaotic_jobs_invariant;
        ] );
      ( "invariants",
        [
          quick "cross-session overlap caught" test_sessions_nic_serialization_catches_overlap;
          quick "disjoint injections pass" test_sessions_nic_serialization_allows_disjoint;
          quick "split_sessions groups by sid" test_split_sessions_groups_and_orders;
        ] );
      ( "family",
        [
          quick "check_service passes a fixed scenario" test_check_service_passes;
          quick "check_chaos passes a fixed scenario" test_check_chaos_passes;
        ] );
    ]

(** A simulated message-passing runtime (simMPI).

    Each rank of a {!Gridb_topology.Machines.t} runs an OCaml function; the
    primitives in {!module-Api} are implemented with effect handlers that park and
    resume the per-rank fibers on the discrete-event engine.  Timing follows
    the same pLogP semantics as the analytic models: a send seizes the
    sender's NIC from [start = max(now, nic_free)] until [start + g(m)] (the
    send call returns at that point, like an eager-buffered [MPI_Send]) and
    the message is delivered at [start + g(m) + L].  With noise disabled,
    collectives written on this runtime complete at exactly the times the
    closed-form models predict — the integration tests assert this.

    Payloads are a single [float] (enough for reductions); simMPI simulates
    {e time}, not data movement. *)

type message = {
  src : int;
  dst : int;
  tag : int;
  msg_size : int;  (** bytes *)
  payload : float;
  sent_at : float;  (** when injection started *)
  delivered_at : float;
}

type request
(** Handle of a non-blocking send. *)

(** Primitives available inside a rank program.  Calling them outside
    {!run} raises [Effect.Unhandled]. *)
module Api : sig
  val send : ?tag:int -> ?payload:float -> dst:int -> msg_size:int -> unit -> unit
  (** Blocks (in simulated time) until the message is fully injected. *)

  val isend : ?tag:int -> ?payload:float -> dst:int -> msg_size:int -> unit -> request
  (** Non-blocking send: reserves the NIC (subsequent sends queue behind it)
      and returns immediately; complete it with {!wait}. *)

  val wait : request -> unit
  (** Blocks until the request's injection is finished.  Waiting twice is
      harmless. *)

  val recv : ?src:int -> ?tag:int -> unit -> message
  (** Blocks until a message matching the optional filters is available.
      Matching messages are consumed oldest-delivery first. *)

  val recv_timeout : ?src:int -> ?tag:int -> timeout:float -> unit -> message option
  (** Like {!recv} but bounded: returns [None] if no matching message
      arrived within [timeout] us of simulated time.  The deadline is a
      cancellable {!Gridb_des.Engine} timer, cancelled as soon as a
      matching message unparks the rank — this is the building block for
      user-level timeout/retry protocols over simMPI, mirroring the
      reliable executor's ACK timers.
      @raise Invalid_argument if [timeout < 0.]. *)

  val time : unit -> float
  (** Current simulated time, us. *)

  val compute : float -> unit
  (** Busy the process for the given duration (us). *)
end

(** Fault injection for robustness tests. *)
type failure =
  | Dead_rank of int
      (** The rank never starts its program; messages to it vanish. *)
  | Drop_message of { src : int; dst : int; nth : int }
      (** Silently lose the [nth] (0-based) message sent on the directed
          link [src -> dst]; the sender still pays the gap. *)

type result = {
  finish : float array;  (** per-rank completion time of its program *)
  makespan : float;  (** max finish *)
  messages : int;  (** point-to-point messages delivered *)
  deadlocked : int list;  (** ranks still blocked in [recv] at quiescence *)
}

val run :
  ?noise:Gridb_des.Noise.t ->
  ?seed:int ->
  ?failures:failure list ->
  ?obs:Gridb_obs.Sink.t ->
  Gridb_topology.Machines.t ->
  (rank:int -> size:int -> unit) ->
  result
(** [run machines program] launches [program ~rank ~size] on every rank at
    time 0 and drives the simulation to quiescence.  [noise] (default
    [Exact]) independently scales each transmission's gap and latency;
    [seed] (default 0) seeds the noise stream; [failures] (default none)
    injects faults.

    [obs] (default {!Gridb_obs.Sink.null}) receives message-level events:
    [Msg_send] at injection start, [Msg_recv] at delivery, [Recv_timeout]
    when a bounded receive's deadline fires, plus the engine's timer
    events.  Null-sink runs are bit-identical to uninstrumented ones. *)

val run_exn :
  ?noise:Gridb_des.Noise.t ->
  ?seed:int ->
  ?failures:failure list ->
  ?obs:Gridb_obs.Sink.t ->
  Gridb_topology.Machines.t ->
  (rank:int -> size:int -> unit) ->
  result
(** Like {!run} but raises [Failure] when any rank deadlocks. *)

type t = { node : int; children : t list }

let leaf node = { node; children = [] }

let binomial n =
  if n < 1 then invalid_arg "Tree.binomial: n < 1";
  (* [build start len] spans [start, start + len).  The root's children sit
     at offsets 2^i < len; the child at offset p owns min(p, len - p) nodes.
     Children are listed largest subtree first: that is the transmission
     order which lets the deepest subtree start earliest. *)
  let rec build start len =
    if len = 1 then leaf start
    else begin
      let rec powers p acc = if p < len then powers (2 * p) (p :: acc) else acc in
      let offsets = powers 1 [] in
      let children =
        List.map (fun p -> build (start + p) (min p (len - p))) offsets
      in
      { node = start; children }
    end
  in
  build 0 n

let flat n =
  if n < 1 then invalid_arg "Tree.flat: n < 1";
  { node = 0; children = List.init (n - 1) (fun i -> leaf (i + 1)) }

let chain n =
  if n < 1 then invalid_arg "Tree.chain: n < 1";
  let rec build i = if i = n - 1 then leaf i else { node = i; children = [ build (i + 1) ] } in
  build 0

let kary ~k n =
  if k < 1 then invalid_arg "Tree.kary: k < 1";
  if n < 1 then invalid_arg "Tree.kary: n < 1";
  let rec build i =
    let children =
      List.init k (fun c -> (k * i) + c + 1)
      |> List.filter (fun j -> j < n)
      |> List.map build
    in
    { node = i; children }
  in
  build 0

let binary n = kary ~k:2 n

let rec size t = 1 + List.fold_left (fun acc c -> acc + size c) 0 t.children

let rec depth t =
  match t.children with
  | [] -> 0
  | cs -> 1 + List.fold_left (fun acc c -> max acc (depth c)) 0 cs

let nodes t =
  let rec preorder t acc =
    t.node :: List.fold_right (fun c acc -> preorder c acc) t.children acc
  in
  preorder t []

let rec max_out_degree t =
  List.fold_left
    (fun acc c -> max acc (max_out_degree c))
    (List.length t.children)
    t.children

let is_spanning ~n t =
  let ns = nodes t in
  List.length ns = n
  && List.sort compare ns = List.init n (fun i -> i)

let rec pp ppf t =
  match t.children with
  | [] -> Format.fprintf ppf "%d" t.node
  | cs ->
      Format.fprintf ppf "@[<hov 2>%d(%a)@]" t.node
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ") pp)
        cs

type shape = Binomial | Flat | Chain | Binary | Kary of int

let build shape n =
  match shape with
  | Binomial -> binomial n
  | Flat -> flat n
  | Chain -> chain n
  | Binary -> binary n
  | Kary k -> kary ~k n

let shape_name = function
  | Binomial -> "binomial"
  | Flat -> "flat"
  | Chain -> "chain"
  | Binary -> "binary"
  | Kary k -> Printf.sprintf "%d-ary" k

let all_shapes = [ Binomial; Flat; Chain; Binary; Kary 4 ]

(* Cross-module property pack: invariants that cut across libraries —
   permutation symmetry, model/simulation agreement, scaling laws.  These
   complement the per-module suites with properties no single module can
   state alone. *)

module Instance = Gridb_sched.Instance
module Schedule = Gridb_sched.Schedule
module Heuristics = Gridb_sched.Heuristics
module Optimal = Gridb_sched.Optimal
module Bounds = Gridb_sched.Bounds
module Machines = Gridb_topology.Machines
module Generators = Gridb_topology.Generators
module Rng = Gridb_util.Rng

let feq ?(eps = 1e-9) a b =
  let scale = Float.max 1. (Float.max (Float.abs a) (Float.abs b)) in
  Float.abs (a -. b) <= eps *. scale

let random_instance ?(n = 6) seed =
  let rng = Rng.create seed in
  Instance.random ~rng ~n Instance.table2_ranges

(* Apply a permutation to an instance (relabel clusters). *)
let permute_instance perm inst =
  let n = inst.Instance.n in
  let latency = Array.make_matrix n n 0. in
  let gap = Array.make_matrix n n 0. in
  let intra = Array.make n 0. in
  for i = 0 to n - 1 do
    intra.(perm.(i)) <- inst.Instance.intra.(i);
    for j = 0 to n - 1 do
      latency.(perm.(i)).(perm.(j)) <- inst.Instance.latency.(i).(j);
      gap.(perm.(i)).(perm.(j)) <- inst.Instance.gap.(i).(j)
    done
  done;
  Instance.v ~root:perm.(inst.Instance.root) ~latency ~gap ~intra

let permutation_invariance_of_optimal =
  QCheck.Test.make ~name:"optimal makespan is invariant under cluster relabeling"
    ~count:(Testutil.count 30)
    QCheck.(pair (int_range 2 5) (int_bound 10_000))
    (fun (n, seed) ->
      let inst = random_instance ~n seed in
      let rng = Rng.create (seed + 1) in
      let perm = Rng.permutation rng n in
      feq (Optimal.makespan inst) (Optimal.makespan (permute_instance perm inst)))

let permutation_invariance_of_bounds =
  QCheck.Test.make ~name:"lower bounds are invariant under cluster relabeling"
    ~count:(Testutil.count 50)
    QCheck.(pair (int_range 2 12) (int_bound 10_000))
    (fun (n, seed) ->
      let inst = random_instance ~n seed in
      let rng = Rng.create (seed + 1) in
      let perm = Rng.permutation rng n in
      feq (Bounds.combined inst) (Bounds.combined (permute_instance perm inst)))

(* Scaling: multiplying every time parameter by k scales every makespan by
   k (heuristic selections are scale-free). *)
let scale_instance k inst =
  let scale m = Array.map (Array.map (fun x -> k *. x)) m in
  Instance.v ~root:inst.Instance.root
    ~latency:(scale inst.Instance.latency)
    ~gap:(scale inst.Instance.gap)
    ~intra:(Array.map (fun x -> k *. x) inst.Instance.intra)

let time_scaling =
  QCheck.Test.make ~name:"makespans scale linearly with the time unit" ~count:(Testutil.count 40)
    QCheck.(pair (int_range 2 12) (int_bound 10_000))
    (fun (n, seed) ->
      let inst = random_instance ~n seed in
      let k = 3.5 in
      let scaled = scale_instance k inst in
      List.for_all
        (fun h ->
          feq ~eps:1e-9
            (k *. Heuristics.makespan h inst)
            (Heuristics.makespan h scaled))
        Heuristics.all)

(* DES/analytic agreement on arbitrary random topologies (not just the
   GRID5000 instance used by test_des). *)
let des_agrees_on_random_topologies =
  QCheck.Test.make ~name:"DES equals analytic prediction on random grids" ~count:(Testutil.count 25)
    QCheck.(pair (int_range 1 7) (int_bound 10_000))
    (fun (n, seed) ->
      let rng = Rng.create seed in
      let spec = { Generators.default_random_spec with cluster_size = (1, 16) } in
      let grid = Generators.uniform_random ~rng ~n spec in
      let machines = Machines.expand grid in
      let msg = 250_000 in
      let inst = Instance.of_grid ~root:0 ~msg grid in
      List.for_all
        (fun h ->
          let schedule = Heuristics.run h inst in
          let predicted = Schedule.makespan inst schedule in
          let plan = Gridb_des.Plan.of_cluster_schedule machines schedule in
          let r = Gridb_des.Exec.run ~msg machines plan in
          feq ~eps:1e-9 predicted r.Gridb_des.Exec.makespan)
        Heuristics.all)

(* simMPI and the DES plan executor agree on any plan. *)
let simmpi_agrees_with_des =
  QCheck.Test.make ~name:"simMPI bcast_plan equals DES executor" ~count:(Testutil.count 20)
    QCheck.(pair (int_range 1 5) (int_bound 10_000))
    (fun (n, seed) ->
      let rng = Rng.create seed in
      let spec = { Generators.default_random_spec with cluster_size = (1, 12) } in
      let grid = Generators.uniform_random ~rng ~n spec in
      let machines = Machines.expand grid in
      let root = Rng.int rng (Machines.count machines) in
      let plan = Gridb_des.Plan.binomial_ranks machines ~root in
      let des = Gridb_des.Exec.run ~msg:100_000 machines plan in
      let mpi =
        Gridb_mpi.Runtime.run_exn machines (fun ~rank ~size:_ ->
            Gridb_mpi.Collectives.bcast_plan ~rank plan ~msg:100_000)
      in
      feq ~eps:1e-9 des.Gridb_des.Exec.makespan mpi.Gridb_mpi.Runtime.makespan)

(* Monotonicity: shrinking every T can only shrink (or keep) the optimal
   makespan. *)
let optimal_monotone_in_t =
  QCheck.Test.make ~name:"optimal makespan monotone in intra times" ~count:(Testutil.count 30)
    QCheck.(pair (int_range 2 5) (int_bound 10_000))
    (fun (n, seed) ->
      let inst = random_instance ~n seed in
      let reduced =
        Instance.v ~root:inst.Instance.root ~latency:inst.Instance.latency
          ~gap:inst.Instance.gap
          ~intra:(Array.map (fun t -> t /. 2.) inst.Instance.intra)
      in
      Optimal.makespan reduced <= Optimal.makespan inst +. 1e-6)

(* Message-size monotonicity end to end: larger broadcasts never finish
   earlier, whatever the heuristic. *)
let makespan_monotone_in_message_size =
  QCheck.Test.make ~name:"makespan monotone in message size" ~count:(Testutil.count 20)
    QCheck.(pair (int_range 2 8) (int_bound 10_000))
    (fun (n, seed) ->
      let rng = Rng.create seed in
      let grid = Generators.uniform_random ~rng ~n Generators.default_random_spec in
      let small = Instance.of_grid ~root:0 ~msg:100_000 grid in
      let large = Instance.of_grid ~root:0 ~msg:1_000_000 grid in
      List.for_all
        (fun h -> Heuristics.makespan h small <= Heuristics.makespan h large +. 1e-6)
        Heuristics.all)

(* Adding one more cluster can never help the portfolio's best makespan on
   the same sub-instance draws... not in general; instead: the portfolio is
   never worse than the mixed strategy, which is one of its members'
   dispatch. *)
let portfolio_beats_mixed =
  QCheck.Test.make ~name:"portfolio <= mixed strategy" ~count:(Testutil.count 40)
    QCheck.(pair (int_range 2 15) (int_bound 10_000))
    (fun (n, seed) ->
      let inst = random_instance ~n seed in
      let mixed = Gridb_sched.Mixed.strategy () in
      (Gridb_sched.Portfolio.run inst).Gridb_sched.Portfolio.makespan
      <= Heuristics.makespan mixed inst +. 1e-9)

let gantt_width_invariance =
  QCheck.Test.make ~name:"gantt renders at any width >= 10" ~count:(Testutil.count 20)
    QCheck.(pair (int_range 10 120) (int_bound 1_000))
    (fun (width, seed) ->
      let inst = random_instance ~n:5 seed in
      let s = Heuristics.run Heuristics.ecef inst in
      String.length (Gridb_sched.Gantt.render ~width inst s) > width)

let () =
  Alcotest.run "properties"
    [
      ( "symmetry",
        [
          QCheck_alcotest.to_alcotest permutation_invariance_of_optimal;
          QCheck_alcotest.to_alcotest permutation_invariance_of_bounds;
          QCheck_alcotest.to_alcotest time_scaling;
        ] );
      ( "agreement",
        [
          QCheck_alcotest.to_alcotest des_agrees_on_random_topologies;
          QCheck_alcotest.to_alcotest simmpi_agrees_with_des;
        ] );
      ( "monotonicity",
        [
          QCheck_alcotest.to_alcotest optimal_monotone_in_t;
          QCheck_alcotest.to_alcotest makespan_monotone_in_message_size;
        ] );
      ( "dominance",
        [
          QCheck_alcotest.to_alcotest portfolio_beats_mixed;
          QCheck_alcotest.to_alcotest gantt_width_invariance;
        ] );
    ]

let edge_style latency =
  match Levels.of_latency latency with
  | Levels.Wan_tcp -> "style=bold, color=red"
  | Levels.Lan_tcp -> "color=blue"
  | Levels.Localhost_tcp -> "style=dashed, color=gray40"
  | Levels.Shared_memory -> "style=dotted, color=gray70"

let to_dot ?(name = "grid") grid =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf (Printf.sprintf "graph %s {\n" name);
  Buffer.add_string buf "  node [shape=box, fontname=\"sans-serif\"];\n";
  let n = Grid.size grid in
  for c = 0 to n - 1 do
    let cl = Grid.cluster grid c in
    Buffer.add_string buf
      (Printf.sprintf "  c%d [label=\"%s\\n%d machines\"];\n" c cl.Cluster.name
         cl.Cluster.size)
  done;
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let latency = Grid.latency grid i j in
      Buffer.add_string buf
        (Printf.sprintf "  c%d -- c%d [label=\"%s\", %s];\n" i j
           (Gridb_util.Units.time_to_string latency)
           (edge_style latency))
    done
  done;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let save path grid =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_dot grid))

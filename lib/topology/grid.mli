(** A grid: clusters plus the inter-cluster interconnection parameters.

    The inter-cluster network is a complete graph over coordinators; each
    directed pair [(i, j)], [i <> j], carries a pLogP parameter set
    ([L_ij], [g_ij(m)]).  The paper's matrices are symmetric, and
    {!validate} checks symmetry, but the representation is directed so
    asymmetric routes can be modelled too. *)

type t

val v : clusters:Cluster.t list -> inter:Gridb_plogp.Params.t array array -> t
(** [inter.(i).(j)] for [i <> j] describes the link from cluster [i]'s
    coordinator to cluster [j]'s.  Diagonal entries are ignored.
    @raise Invalid_argument if the matrix is not [n x n] for [n] clusters,
    if [n = 0], or if cluster ids are not [0 .. n-1] in order. *)

val size : t -> int
(** Number of clusters. *)

val total_processes : t -> int
(** Sum of cluster sizes (88 for the Table 3 grid). *)

val cluster : t -> int -> Cluster.t
(** @raise Invalid_argument on out-of-range index. *)

val clusters : t -> Cluster.t array
(** A fresh copy of the cluster array. *)

val link : t -> int -> int -> Gridb_plogp.Params.t
(** [link t i j] for [i <> j].  @raise Invalid_argument if [i = j] or out of
    range. *)

val latency : t -> int -> int -> float
(** [latency t i j = Params.latency (link t i j)] in us. *)

val gap : t -> int -> int -> int -> float
(** [gap t i j m]: inter-cluster gap for an [m]-byte message, us. *)

val send_time : t -> int -> int -> int -> float
(** [send_time t i j m = gap + latency]: the paper's [g_ij(m) + L_ij]. *)

val validate : t -> (unit, string) result
(** Checks latency symmetry within 1e-6 relative tolerance and positive
    sizes; returns a human-readable reason on failure. *)

val map_links : (int -> int -> Gridb_plogp.Params.t -> Gridb_plogp.Params.t) -> t -> t
(** Rebuild with transformed inter-cluster links (noise injection). *)

val pp : Format.formatter -> t -> unit

type t = Exact | Lognormal of float | Uniform of float

let default_measured = Lognormal 0.08

let factor t rng =
  match t with
  | Exact -> 1.
  | Lognormal sigma -> Gridb_util.Rng.lognormal ~mu:0. ~sigma rng
  | Uniform eps ->
      if eps < 0. || eps >= 1. then invalid_arg "Noise.factor: Uniform eps outside [0, 1)";
      Gridb_util.Rng.float_in rng (1. -. eps) (1. +. eps)

let apply t rng x = x *. factor t rng

let to_string = function
  | Exact -> "exact"
  | Lognormal sigma -> Printf.sprintf "lognormal(sigma=%g)" sigma
  | Uniform eps -> Printf.sprintf "uniform(+/-%g)" eps

module Instance = Gridb_sched.Instance
module State = Gridb_sched.State
module Schedule = Gridb_sched.Schedule
module Policy = Gridb_sched.Policy
module Engine = Gridb_sched.Engine
module Bounds = Gridb_sched.Bounds

type stats = {
  expanded : int;
  pruned_bound : int;
  pruned_dominated : int;
  improved : int;
}

type certificate = {
  makespan : float;
  schedule : Schedule.t;
  lower_bound : float;
  incumbent : string;
  incumbent_makespan : float;
  optimal_by_heuristic : bool;
  stats : stats;
}

let default_max_clusters = 12

(* Dominance lists are an accelerator, not a correctness requirement:
   once a mask accumulates this many explored states, further ones are
   still checked against the list but no longer added. *)
let memo_cap = 512

let incumbent_of inst =
  let best = ref None in
  List.iter
    (fun p ->
      let s = Engine.run p inst in
      let mk = Schedule.makespan inst s in
      match !best with
      | Some (_, _, bmk) when bmk <= mk -> ()
      | _ -> best := Some (Policy.name p, s, mk))
    Policy.all;
  match !best with Some x -> x | None -> assert false

let choices_of (s : Schedule.t) =
  List.map (fun (e : Schedule.event) -> (e.Schedule.src, e.Schedule.dst)) s.Schedule.events

let solve ?(max_clusters = default_max_clusters) inst =
  let n = inst.Instance.n in
  if n > max_clusters then
    invalid_arg
      (Printf.sprintf "Exact: %d clusters exceeds the ceiling of %d" n max_clusters);
  let root = inst.Instance.root in
  let gap = inst.Instance.gap
  and lat = inst.Instance.latency
  and intra = inst.Instance.intra in
  let inc_name, inc_sched, inc_mk = incumbent_of inst in
  let best = ref inc_mk in
  let best_choices = ref (choices_of inc_sched) in
  let improved = ref 0
  and expanded = ref 0
  and pruned_bound = ref 0
  and pruned_dominated = ref 0 in
  if n > 1 then begin
    (* Static tables: cheapest final hop into [j] from anywhere, and the
       globally cheapest gap (for the source-multiplication bound). *)
    let min_in_edge =
      Array.init n (fun j ->
          let m = ref infinity in
          for k = 0 to n - 1 do
            if k <> j then m := Float.min !m (gap.(k).(j) +. lat.(k).(j))
          done;
          !m)
    in
    let gmin = ref infinity in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if i <> j then gmin := Float.min !gmin gap.(i).(j)
      done
    done;
    let gmin = !gmin in
    let in_a = Array.make n false in
    let avail = Array.make n infinity in
    in_a.(root) <- true;
    avail.(root) <- 0.;
    let mask = ref (1 lsl root) in
    let choices = Array.make (n - 1) (0, 0) in
    let memo : (int, float array list ref) Hashtbl.t = Hashtbl.create 1024 in
    let eb0 = Array.make n infinity in
    let lower_bound na =
      (* (1) every reached cluster still runs its internal broadcast *)
      let lb = ref 0. and min_avail = ref infinity in
      for k = 0 to n - 1 do
        if in_a.(k) then begin
          let c = avail.(k) +. intra.(k) in
          if c > !lb then lb := c;
          if avail.(k) < !min_avail then min_avail := avail.(k)
        end
      done;
      let ma = !min_avail in
      (* (2) every unreached cluster needs a final hop.  Direct hops start
         no earlier than the actual sender's [avail]; a hop relayed
         through another unreached cluster [k] starts no earlier than
         [k]'s own cheapest possible arrival — no event starts before the
         earliest sender, so [ma + min_in_edge k] bounds it. *)
      let min_intra_b = ref infinity in
      for j = 0 to n - 1 do
        if not in_a.(j) then begin
          eb0.(j) <- ma +. min_in_edge.(j);
          if intra.(j) < !min_intra_b then min_intra_b := intra.(j)
        end
      done;
      for j = 0 to n - 1 do
        if not in_a.(j) then begin
          let eb = ref infinity in
          for i = 0 to n - 1 do
            if in_a.(i) then begin
              let c = (avail.(i) +. gap.(i).(j)) +. lat.(i).(j) in
              if c < !eb then eb := c
            end
            else if i <> j then begin
              let c = (eb0.(i) +. gap.(i).(j)) +. lat.(i).(j) in
              if c < !eb then eb := c
            end
          done;
          let c = !eb +. intra.(j) in
          if c > !lb then lb := c
        end
      done;
      (* (3) the informed population at most doubles per [gmin]: the last
         of [n] clusters is reached no earlier than [ceil (log2 (n / na))]
         gap slots after the earliest sender (latency only delays this). *)
      let d = ref 0 and c = ref na in
      while !c < n do
        incr d;
        c := !c * 2
      done;
      let f = (ma +. (float_of_int !d *. gmin)) +. !min_intra_b in
      if f > !lb then lb := f;
      !lb
    in
    let dominates v =
      let ok = ref true in
      let k = ref 0 in
      while !ok && !k < n do
        if v.(!k) > avail.(!k) then ok := false;
        incr k
      done;
      !ok
    in
    (* Explored-state memo.  Sound to prune on: DFS finishes each
       same-mask state's subtree before the next one starts and the
       incumbent only decreases, so a pointwise-slower revisit cannot
       improve on what the stored state already proved. *)
    let dominated_or_remember () =
      let entry =
        match Hashtbl.find_opt memo !mask with
        | Some r -> r
        | None ->
            let r = ref [] in
            Hashtbl.add memo !mask r;
            r
      in
      if List.exists dominates !entry then true
      else begin
        let mine = Array.copy avail in
        let kept =
          List.filter
            (fun v ->
              let dominated = ref true in
              let k = ref 0 in
              while !dominated && !k < n do
                if mine.(!k) > v.(!k) then dominated := false;
                incr k
              done;
              not !dominated)
            !entry
        in
        if List.length kept < memo_cap then entry := mine :: kept else entry := kept;
        false
      end
    in
    let rec dfs depth na =
      if depth = n - 1 then begin
        let mk = ref 0. in
        for k = 0 to n - 1 do
          let c = avail.(k) +. intra.(k) in
          if c > !mk then mk := c
        done;
        if !mk < !best then begin
          best := !mk;
          best_choices := Array.to_list (Array.sub choices 0 depth);
          incr improved
        end
      end
      else if lower_bound na >= !best then incr pruned_bound
      else if dominated_or_remember () then incr pruned_dominated
      else begin
        incr expanded;
        let cands = ref [] in
        for i = n - 1 downto 0 do
          if in_a.(i) then
            for j = n - 1 downto 0 do
              if not in_a.(j) then begin
                let sender_free = avail.(i) +. gap.(i).(j) in
                let arrival = sender_free +. lat.(i).(j) in
                cands := (arrival, i, j, sender_free) :: !cands
              end
            done
        done;
        (* Earliest-arrival-first: good completions early tighten the
           incumbent and let the bound cut the rest. *)
        let cands =
          List.sort
            (fun (a, i, j, _) (a', i', j', _) -> compare (a, i, j) (a', i', j'))
            !cands
        in
        List.iter
          (fun (arrival, i, j, sender_free) ->
            let saved = avail.(i) in
            avail.(i) <- sender_free;
            in_a.(j) <- true;
            avail.(j) <- arrival;
            mask := !mask lor (1 lsl j);
            choices.(depth) <- (i, j);
            dfs (depth + 1) (na + 1);
            mask := !mask land lnot (1 lsl j);
            in_a.(j) <- false;
            avail.(j) <- infinity;
            avail.(i) <- saved)
          cands
      end
    in
    dfs 0 1
  end;
  let state = State.create inst in
  List.iter (fun (src, dst) -> State.send state ~src ~dst) !best_choices;
  let schedule = State.to_schedule state in
  assert (Float.equal (Schedule.makespan inst schedule) !best);
  {
    makespan = !best;
    schedule;
    lower_bound = Bounds.combined inst;
    incumbent = inc_name;
    incumbent_makespan = inc_mk;
    optimal_by_heuristic = !improved = 0;
    stats =
      {
        expanded = !expanded;
        pruned_bound = !pruned_bound;
        pruned_dominated = !pruned_dominated;
        improved = !improved;
      };
  }

let makespan ?max_clusters inst = (solve ?max_clusters inst).makespan
let schedule ?max_clusters inst = (solve ?max_clusters inst).schedule

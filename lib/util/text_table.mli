(** Aligned plain-text tables.

    The bench harness prints every reproduced table/figure as rows on stdout;
    this module handles column sizing and alignment so the output is directly
    comparable with the paper's tables. *)

type align = Left | Right

type t

val create : ?align:align list -> string list -> t
(** [create headers] starts a table.  [align] gives per-column alignment and
    defaults to [Right] for every column except the first ([Left]). *)

val add_row : t -> string list -> unit
(** @raise Invalid_argument if the row width differs from the header width. *)

val add_float_row : ?fmt:(float -> string) -> t -> string -> float list -> unit
(** First cell is a label, remaining cells formatted floats
    (default [Printf.sprintf "%.3f"]). *)

val add_separator : t -> unit
(** Horizontal rule before the next row. *)

val render : t -> string
val print : t -> unit
(** [render] followed by [print_string], with a trailing newline. *)

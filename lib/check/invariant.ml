(* Independent invariant predicates.  Nothing here calls
   Schedule.validate, Schedule.makespan's internals or the executors: every
   quantity is recomputed from the instance matrices / the event stream so
   the code under test cannot vouch for itself.  (The one exception is the
   final comparison of makespan_recomputation, which compares *against*
   Schedule.makespan — that comparison is the point.) *)

module Instance = Gridb_sched.Instance
module Schedule = Gridb_sched.Schedule
module Event = Gridb_obs.Event
module Machines = Gridb_topology.Machines
module Params = Gridb_plogp.Params

type violation = { invariant : string; detail : string }
type outcome = (unit, violation) result

let fail invariant fmt = Format.kasprintf (fun detail -> Error { invariant; detail }) fmt

let pp_violation ppf v = Format.fprintf ppf "%s: %s" v.invariant v.detail

let feq ?(eps = 1e-9) a b =
  let scale = Float.max 1. (Float.max (Float.abs a) (Float.abs b)) in
  Float.abs (a -. b) <= eps *. scale

let cross_check ~invariant ~expected ~got =
  if feq expected got then Ok ()
  else fail invariant "expected %.17g, got %.17g (relative error %g)" expected got
      (Float.abs (expected -. got) /. Float.max 1. (Float.abs expected))

(* --- schedule invariants ------------------------------------------------ *)

let receive_once (inst : Instance.t) (s : Schedule.t) =
  let name = "receive-once" in
  if s.Schedule.n <> inst.Instance.n then
    fail name "schedule spans %d clusters, instance %d" s.Schedule.n inst.Instance.n
  else begin
    let received = Array.make s.Schedule.n 0 in
    let oob = ref None in
    List.iter
      (fun (e : Schedule.event) ->
        if e.dst < 0 || e.dst >= s.Schedule.n then oob := Some e.dst
        else received.(e.dst) <- received.(e.dst) + 1)
      s.Schedule.events;
    match !oob with
    | Some d -> fail name "transmission to out-of-range cluster %d" d
    | None ->
        let rec scan k =
          if k = s.Schedule.n then Ok ()
          else if k = s.Schedule.root then
            if received.(k) > 0 then fail name "root cluster %d receives %d times" k received.(k)
            else scan (k + 1)
          else if received.(k) <> 1 then
            fail name "cluster %d receives %d times (wanted exactly 1)" k received.(k)
          else scan (k + 1)
        in
        scan 0
  end

let causality (_inst : Instance.t) (s : Schedule.t) =
  let name = "causality" in
  let ready = Array.make (max 1 s.Schedule.n) infinity in
  if s.Schedule.root >= 0 && s.Schedule.root < s.Schedule.n then ready.(s.Schedule.root) <- 0.;
  let rec go = function
    | [] -> Ok ()
    | (e : Schedule.event) :: rest ->
        if e.src < 0 || e.src >= s.Schedule.n || e.dst < 0 || e.dst >= s.Schedule.n then
          fail name "round %d: cluster out of range (%d -> %d)" e.round e.src e.dst
        else if ready.(e.src) = infinity then
          fail name "round %d: cluster %d sends without ever holding the message" e.round e.src
        else if e.start +. 1e-9 < ready.(e.src) then
          fail name "round %d: cluster %d sends at %g before its own arrival at %g" e.round
            e.src e.start ready.(e.src)
        else begin
          ready.(e.dst) <- e.arrival;
          go rest
        end
  in
  go s.Schedule.events

let nic_serialization (inst : Instance.t) (s : Schedule.t) =
  let name = "nic-serialization" in
  if s.Schedule.n <> inst.Instance.n then
    fail name "schedule spans %d clusters, instance %d" s.Schedule.n inst.Instance.n
  else begin
    let busy = Array.make s.Schedule.n 0. in
    let rec go = function
      | [] -> Ok ()
      | (e : Schedule.event) :: rest ->
          if e.src < 0 || e.src >= s.Schedule.n || e.dst < 0 || e.dst >= s.Schedule.n
            || e.src = e.dst
          then fail name "round %d: bad edge %d -> %d" e.round e.src e.dst
          else begin
            let g = inst.Instance.gap.(e.src).(e.dst) in
            if e.start +. 1e-9 < busy.(e.src) then
              fail name
                "round %d: cluster %d starts a send at %g while its NIC is busy until %g"
                e.round e.src e.start busy.(e.src)
            else if not (feq e.sender_free (e.start +. g)) then
              fail name "round %d: sender_free %g does not equal start %g + gap %g" e.round
                e.sender_free e.start g
            else begin
              busy.(e.src) <- e.start +. g;
              go rest
            end
          end
    in
    go s.Schedule.events
  end

let ab_discipline (inst : Instance.t) (s : Schedule.t) =
  let name = "ab-discipline" in
  if s.Schedule.n <> inst.Instance.n then
    fail name "schedule spans %d clusters, instance %d" s.Schedule.n inst.Instance.n
  else if s.Schedule.root < 0 || s.Schedule.root >= s.Schedule.n then
    fail name "root %d out of range" s.Schedule.root
  else begin
    let in_a = Array.make s.Schedule.n false in
    in_a.(s.Schedule.root) <- true;
    let rec go round = function
      | [] ->
          let missing = ref [] in
          for k = s.Schedule.n - 1 downto 0 do
            if not in_a.(k) then missing := k :: !missing
          done;
          if !missing = [] then Ok ()
          else
            fail name "B not empty after the last round: {%s} never received"
              (String.concat "," (List.map string_of_int !missing))
      | (e : Schedule.event) :: rest ->
          if e.round <> round then
            fail name "expected round %d, event says %d" round e.round
          else if e.src < 0 || e.src >= s.Schedule.n || e.dst < 0 || e.dst >= s.Schedule.n then
            fail name "round %d: cluster out of range" round
          else if not in_a.(e.src) then
            fail name "round %d: sender %d is still in B" round e.src
          else if in_a.(e.dst) then
            fail name "round %d: receiver %d is already in A" round e.dst
          else begin
            in_a.(e.dst) <- true;
            go (round + 1) rest
          end
    in
    go 0 s.Schedule.events
  end

(* --- replay: the independent recomputation ----------------------------- *)

let replay (inst : Instance.t) order =
  let n = inst.Instance.n in
  let ready = Array.make n infinity in
  let busy = Array.make n 0. in
  ready.(inst.Instance.root) <- 0.;
  let rec go = function
    | [] -> Ok (ready, busy)
    | (i, j) :: rest ->
        if i < 0 || i >= n || j < 0 || j >= n || i = j then
          Error (Printf.sprintf "replay: bad edge %d -> %d" i j)
        else if ready.(i) = infinity then
          Error (Printf.sprintf "replay: sender %d does not hold the message" i)
        else if ready.(j) <> infinity && j <> inst.Instance.root then
          Error (Printf.sprintf "replay: cluster %d receives twice" j)
        else if j = inst.Instance.root then
          Error "replay: root receives"
        else begin
          let start = Float.max ready.(i) busy.(i) in
          busy.(i) <- start +. inst.Instance.gap.(i).(j);
          ready.(j) <- busy.(i) +. inst.Instance.latency.(i).(j);
          go rest
        end
  in
  go order

let replay_completion inst order =
  match replay inst order with
  | Error e -> Error e
  | Ok (ready, busy) ->
      Ok
        (Array.init inst.Instance.n (fun k ->
             Float.max ready.(k) busy.(k) +. inst.Instance.intra.(k)))

let replay_makespan inst order =
  Result.map (Array.fold_left Float.max 0.) (replay_completion inst order)

let makespan_recomputation (inst : Instance.t) (s : Schedule.t) =
  let name = "makespan-recomputation" in
  if s.Schedule.n <> inst.Instance.n then
    fail name "schedule spans %d clusters, instance %d" s.Schedule.n inst.Instance.n
  else begin
    let n = s.Schedule.n in
    let ready = Array.make n infinity in
    let busy = Array.make n 0. in
    ready.(s.Schedule.root) <- 0.;
    (* Recompute every event's timing from first principles and require the
       recorded fields to agree as we go. *)
    let rec events = function
      | [] -> Ok ()
      | (e : Schedule.event) :: rest ->
          if ready.(e.src) = infinity then
            fail name "round %d: sender %d never received" e.round e.src
          else begin
            let start = Float.max ready.(e.src) busy.(e.src) in
            let free = start +. inst.Instance.gap.(e.src).(e.dst) in
            let arrival = free +. inst.Instance.latency.(e.src).(e.dst) in
            if not (feq start e.start) then
              fail name "round %d: recorded start %g, recomputed %g" e.round e.start start
            else if not (feq free e.sender_free) then
              fail name "round %d: recorded sender_free %g, recomputed %g" e.round
                e.sender_free free
            else if not (feq arrival e.arrival) then
              fail name "round %d: recorded arrival %g, recomputed %g" e.round e.arrival
                arrival
            else begin
              busy.(e.src) <- free;
              ready.(e.dst) <- arrival;
              events rest
            end
          end
    in
    match events s.Schedule.events with
    | Error _ as e -> e
    | Ok () ->
        let rec arrays k =
          if k = n then Ok ()
          else if not (feq ready.(k) s.Schedule.ready.(k)) then
            fail name "ready.(%d) records %g, recomputation says %g" k s.Schedule.ready.(k)
              ready.(k)
          else begin
            let expected_busy = Float.max ready.(k) busy.(k) in
            if not (feq expected_busy s.Schedule.busy_until.(k)) then
              fail name "busy_until.(%d) records %g, recomputation says %g" k
                s.Schedule.busy_until.(k) expected_busy
            else arrays (k + 1)
          end
        in
        (match arrays 0 with
        | Error _ as e -> e
        | Ok () ->
            let recomputed = ref 0. in
            for k = 0 to n - 1 do
              recomputed :=
                Float.max !recomputed
                  (Float.max ready.(k) busy.(k) +. inst.Instance.intra.(k))
            done;
            cross_check ~invariant:name ~expected:!recomputed
              ~got:(Schedule.makespan inst s))
  end

let schedule_invariant_names =
  [ "receive-once"; "causality"; "nic-serialization"; "ab-discipline";
    "makespan-recomputation" ]

let ( let* ) = Result.bind

let check_schedule inst s =
  let* () = receive_once inst s in
  let* () = causality inst s in
  let* () = nic_serialization inst s in
  let* () = ab_discipline inst s in
  makespan_recomputation inst s

(* --- stream invariants -------------------------------------------------- *)

(* The DES derives every time in the stream with the exact expressions the
   invariants assume (start = max now nic_free, end = start + g, arrival =
   end + l), so all stream comparisons are exact float comparisons: any
   difference at all is a bug, not rounding. *)

let arrival_counts ~n events =
  let count = Array.make n 0 in
  let oob = ref None in
  List.iter
    (function
      | Event.Arrival { dst; _ } ->
          if dst < 0 || dst >= n then oob := Some dst else count.(dst) <- count.(dst) + 1
      | _ -> ())
    events;
  (count, !oob)

let stream_receive_exactly_once ~n events =
  let name = "stream-receive-once" in
  match arrival_counts ~n events with
  | _, Some d -> fail name "arrival at out-of-range rank %d" d
  | count, None ->
      let rec scan k =
        if k = n then Ok ()
        else if count.(k) <> 1 then fail name "rank %d received %d times (wanted 1)" k count.(k)
        else scan (k + 1)
      in
      scan 0

let stream_receive_at_most_once ~n events =
  let name = "stream-receive-at-most-once" in
  match arrival_counts ~n events with
  | _, Some d -> fail name "arrival at out-of-range rank %d" d
  | count, None ->
      let rec scan k =
        if k = n then Ok ()
        else if count.(k) > 1 then fail name "rank %d received %d times" k count.(k)
        else scan (k + 1)
      in
      scan 0

let first_arrivals ~n events =
  let arr = Array.make n nan in
  List.iter
    (function
      | Event.Arrival { dst; time; _ } when dst >= 0 && dst < n ->
          if Float.is_nan arr.(dst) then arr.(dst) <- time
      | _ -> ())
    events;
  arr

let stream_causality ~n events =
  let name = "stream-causality" in
  let arr = first_arrivals ~n events in
  let rec go = function
    | [] -> Ok ()
    | Event.Send_start { src; time; dst; _ } :: rest ->
        if src < 0 || src >= n then fail name "send from out-of-range rank %d" src
        else if Float.is_nan arr.(src) then
          fail name "rank %d sends to %d at %g without ever receiving the message" src dst
            time
        else if time < arr.(src) then
          fail name "rank %d sends to %d at %g before its own arrival at %g" src dst time
            arr.(src)
        else go rest
    | _ :: rest -> go rest
  in
  go events

(* Pair each Send_start with its Send_end.  Both executors emit the pair
   back to back, so a pending start keyed by (src, dst) is always consumed
   by the next end of that edge. *)
let injection_intervals ~n events =
  let pending = Hashtbl.create 64 in
  let per_src = Array.make n [] in
  let rec go = function
    | [] ->
        if Hashtbl.length pending > 0 then
          let (src, dst), _ = Hashtbl.fold (fun k v _ -> (k, v)) pending (((-1), -1), 0.) in
          Error (Printf.sprintf "send %d -> %d has a start but no end" src dst)
        else Ok per_src
    | Event.Send_start { src; dst; time; _ } :: rest ->
        if src < 0 || src >= n then Error (Printf.sprintf "send from out-of-range rank %d" src)
        else if Hashtbl.mem pending (src, dst) then
          Error (Printf.sprintf "send %d -> %d started twice without ending" src dst)
        else begin
          Hashtbl.add pending (src, dst) time;
          go rest
        end
    | Event.Send_end { src; dst; time; arrival } :: rest -> (
        match Hashtbl.find_opt pending (src, dst) with
        | None -> Error (Printf.sprintf "send %d -> %d ends without a start" src dst)
        | Some start ->
            Hashtbl.remove pending (src, dst);
            per_src.(src) <- (start, time, dst, arrival) :: per_src.(src);
            go rest)
    | _ :: rest -> go rest
  in
  go events

let stream_nic_serialization ~n events =
  let name = "stream-nic-serialization" in
  match injection_intervals ~n events with
  | Error d -> fail name "%s" d
  | Ok per_src ->
      let bad = ref None in
      Array.iteri
        (fun src intervals ->
          if !bad = None then begin
            let sorted =
              List.sort (fun (a, _, _, _) (b, _, _, _) -> Float.compare a b) intervals
            in
            let rec scan = function
              | (s0, e0, d0, _) :: ((s1, _, d1, _) :: _ as rest) ->
                  if e0 < s0 then
                    bad :=
                      Some
                        (Printf.sprintf "send %d -> %d ends at %g before it starts at %g" src
                           d0 e0 s0)
                  else if s1 < e0 then
                    bad :=
                      Some
                        (Printf.sprintf
                           "rank %d injects to %d at %g while the NIC is busy until %g (send \
                            to %d)"
                           src d1 s1 e0 d0)
                  else scan rest
              | _ -> ()
            in
            scan sorted
          end)
        per_src;
      (match !bad with None -> Ok () | Some d -> fail name "%s" d)

let stream_gap_conformance ~machines ~msg events =
  let name = "stream-gap-conformance" in
  let n = Machines.count machines in
  match injection_intervals ~n events with
  | Error d -> fail name "%s" d
  | Ok per_src ->
      let bad = ref None in
      Array.iteri
        (fun src intervals ->
          List.iter
            (fun (start, stop, dst, arrival) ->
              if !bad = None && dst >= 0 && dst < n && dst <> src then begin
                let p = Machines.link_params machines src dst in
                let g = Params.gap p msg and l = Params.latency p in
                if not (feq (stop -. start) g) then
                  bad :=
                    Some
                      (Printf.sprintf "send %d -> %d occupies the NIC for %g, link gap is %g"
                         src dst (stop -. start) g)
                else if not (feq arrival (stop +. l)) then
                  bad :=
                    Some
                      (Printf.sprintf
                         "send %d -> %d predicts arrival %g, injection end %g + latency %g = \
                          %g"
                         src dst arrival stop l (stop +. l))
              end)
            intervals)
        per_src;
      (match !bad with None -> Ok () | Some d -> fail name "%s" d)

let stream_no_spontaneous_delivery ~root events =
  let name = "stream-no-spontaneous-delivery" in
  let promised = Hashtbl.create 64 in
  List.iter
    (function
      | Event.Send_end { src; dst; arrival; _ } -> Hashtbl.add promised (src, dst) arrival
      | _ -> ())
    events;
  let rec go = function
    | [] -> Ok ()
    | Event.Arrival { src; dst; time } :: rest ->
        if src = dst && dst = root then go rest (* the root injects the message itself *)
        else if List.exists (fun t -> t = time) (Hashtbl.find_all promised (src, dst)) then
          go rest
        else
          fail name "rank %d 'arrives' at %d at time %g with no transmission predicting it"
            src dst time
    | _ :: rest -> go rest
  in
  go events

(* --- multi-session streams --------------------------------------------- *)

(* A service run interleaves many sessions on one engine; the session layer
   wraps everything it publishes in [Tagged { sid; _ }].  Split on sid to
   apply the single-broadcast invariants above per session, then check the
   one property that only exists ACROSS sessions: the shared wire must
   serialize injections per NIC over the whole merged stream. *)

let split_sessions events =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun e ->
      match Event.sid e with
      | None -> ()
      | Some sid ->
          let slot =
            match Hashtbl.find_opt tbl sid with
            | Some r -> r
            | None ->
                let r = ref [] in
                Hashtbl.add tbl sid r;
                order := sid :: !order;
                r
          in
          slot := Event.untag e :: !slot)
    events;
  List.rev !order
  |> List.map (fun sid -> (sid, List.rev !(Hashtbl.find tbl sid)))
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let sessions_nic_serialization ~n events =
  let name = "sessions-nic-serialization" in
  (* Injection intervals keyed by (sid, src, dst): within one session the
     executors emit each start/end pair back to back, and distinct sessions
     never share a key, so sequential pairing is unambiguous even though
     the merged stream interleaves sessions. *)
  let pending = Hashtbl.create 64 in
  let per_src = Array.make n [] in
  let rec collect = function
    | [] ->
        if Hashtbl.length pending > 0 then
          let (sid, src, dst), _ =
            Hashtbl.fold (fun k v _ -> (k, v)) pending ((-1, -1, -1), 0.)
          in
          Error
            (Printf.sprintf "session %d: send %d -> %d has a start but no end" sid src
               dst)
        else Ok per_src
    | e :: rest -> (
        match Event.sid e with
        | None -> collect rest
        | Some sid -> (
            match Event.untag e with
            | Event.Send_start { src; dst; time; _ } ->
                if src < 0 || src >= n then
                  Error
                    (Printf.sprintf "session %d: send from out-of-range rank %d" sid src)
                else if Hashtbl.mem pending (sid, src, dst) then
                  Error
                    (Printf.sprintf
                       "session %d: send %d -> %d started twice without ending" sid src
                       dst)
                else begin
                  Hashtbl.add pending (sid, src, dst) time;
                  collect rest
                end
            | Event.Send_end { src; dst; time; _ } -> (
                match Hashtbl.find_opt pending (sid, src, dst) with
                | None ->
                    Error
                      (Printf.sprintf "session %d: send %d -> %d ends without a start"
                         sid src dst)
                | Some start ->
                    Hashtbl.remove pending (sid, src, dst);
                    per_src.(src) <- (start, time, sid, dst) :: per_src.(src);
                    collect rest)
            | _ -> collect rest))
  in
  match collect events with
  | Error d -> fail name "%s" d
  | Ok per_src ->
      let bad = ref None in
      Array.iteri
        (fun src intervals ->
          if !bad = None then begin
            let sorted =
              List.sort
                (fun (a, _, _, _) (b, _, _, _) -> Float.compare a b)
                intervals
            in
            let rec scan = function
              | (s0, e0, sid0, d0) :: ((s1, _, sid1, d1) :: _ as rest) ->
                  if e0 < s0 then
                    bad :=
                      Some
                        (Printf.sprintf
                           "session %d: send %d -> %d ends at %g before it starts at %g"
                           sid0 src d0 e0 s0)
                  else if s1 < e0 then
                    bad :=
                      Some
                        (Printf.sprintf
                           "rank %d: session %d injects to %d at %g while the NIC is \
                            busy until %g with session %d's send to %d"
                           src sid1 d1 s1 e0 sid0 d0)
                  else scan rest
              | _ -> ()
            in
            scan sorted
          end)
        per_src;
      (match !bad with None -> Ok () | Some d -> fail name "%s" d)

let stream_invariant_names =
  [ "stream-receive-once"; "stream-receive-at-most-once"; "stream-causality";
    "stream-nic-serialization"; "stream-gap-conformance";
    "stream-no-spontaneous-delivery"; "sessions-nic-serialization" ]

let check_stream ?(faulty = false) ~n ~root events =
  let* () =
    if faulty then stream_receive_at_most_once ~n events
    else stream_receive_exactly_once ~n events
  in
  let* () = stream_causality ~n events in
  let* () = stream_nic_serialization ~n events in
  stream_no_spontaneous_delivery ~root events

(** Optimal broadcast schedules for the homogeneous special case.

    When every inter-cluster link shares one latency [L] and one gap [g]
    and every cluster shares one intra-cluster time [T], the Section 3
    model collapses to the postal model of Bar-Noy and Kipnis, and Träff's
    round-based construction ("Optimal Broadcast Schedules in Logarithmic
    Time", PAPERS.md) applies: the number of coordinators that can hold
    the message [t] after the root starts obeys

    {v N(t) = 1              for 0 <= t < g + L
       N(t) = N(t - g) + N(t - g - L)   for t >= g + L v}

    (the root's first send splits the remaining broadcast into the root
    continuing after its gap and the receiver starting a latency later),
    and the keep-every-sender-busy schedule attains it — each coordinator,
    once informed, sends back-to-back to still-uninformed clusters.  The
    last coordinator is informed at [t* = min {t : N(t) >= n}] and, under
    the [After_sends] completion model with uniform [T], the optimal
    makespan is exactly [t* + T].

    {!schedule} builds that schedule in the {!Gridb_sched.Schedule} shape
    (so it replays on the DES and through every schedule invariant);
    {!last_arrival} recomputes [t*] independently of the scheduling state
    machine, with the same float associations, so the two agree bitwise.
    The exact solver ({!Exact}) must agree with both on homogeneous
    instances — each certifies the other. *)

type params = {
  n : int;  (** clusters *)
  root : int;
  latency : float;  (** uniform off-diagonal [L_ij], us *)
  gap : float;  (** uniform off-diagonal [g_ij], us *)
  intra : float;  (** uniform [T_k], us *)
}

val homogeneous : ?eps:float -> Gridb_sched.Instance.t -> params option
(** [Some] iff every off-diagonal latency entry, every off-diagonal gap
    entry and every intra time agree to within relative [eps] (default 0:
    exact equality, which instances built by {!instance} or
    {!Gridb_topology.Generators.homogeneous} satisfy).  Single-cluster
    instances are trivially homogeneous. *)

val instance : params -> Gridb_sched.Instance.t
(** Uniform matrices (diagonal 0) from the parameters.
    @raise Invalid_argument on negative parameters or a root out of
    range. *)

val informed : gap:float -> latency:float -> float -> int
(** [informed ~gap ~latency t]: the recurrence [N(t)] above — the maximum
    number of coordinators any schedule can inform within [t] of the root
    holding the message.  @raise Invalid_argument if [gap <= 0.]. *)

val last_arrival : n:int -> gap:float -> latency:float -> float
(** [t*]: earliest time the [n]-th coordinator can hold the message — the
    [(n-1)]-th pop of the keep-senders-busy event queue (0 for [n <= 1]).
    Float arithmetic matches {!Gridb_sched.State.send}
    ([(avail + g) + L]), so it equals the greedy schedule's last arrival
    bitwise.  @raise Invalid_argument if [gap < 0.] or [latency < 0.]. *)

val makespan : params -> float
(** [last_arrival + intra] for [n >= 2]; [intra] for a single cluster.
    The certified optimal [After_sends] makespan. *)

val schedule : Gridb_sched.Instance.t -> Gridb_sched.Schedule.t
(** The keep-every-sender-busy optimal schedule: each round the sender
    with the smallest [avail] (ties to the smallest id) serves the
    smallest-id cluster still in [B].  @raise Invalid_argument if the
    instance is not homogeneous ({!homogeneous} with [eps = 0]). *)

module Machines = Gridb_topology.Machines
module Tree = Gridb_collectives.Tree
module Schedule = Gridb_sched.Schedule

type t = { root : int; children : int list array }

let validate ~root ~children =
  let n = Array.length children in
  if n = 0 then invalid_arg "Plan.v: empty plan";
  if root < 0 || root >= n then invalid_arg "Plan.v: root out of range";
  let indegree = Array.make n 0 in
  Array.iter
    (fun kids ->
      List.iter
        (fun k ->
          if k < 0 || k >= n then invalid_arg "Plan.v: child rank out of range";
          indegree.(k) <- indegree.(k) + 1)
        kids)
    children;
  if indegree.(root) <> 0 then invalid_arg "Plan.v: root has a parent";
  Array.iteri
    (fun r d -> if r <> root && d <> 1 then invalid_arg "Plan.v: not a spanning tree")
    indegree;
  (* In-degrees are right; check reachability to exclude disjoint cycles. *)
  let seen = Array.make n false in
  let rec visit r =
    if seen.(r) then invalid_arg "Plan.v: cycle";
    seen.(r) <- true;
    List.iter visit children.(r)
  in
  visit root;
  if not (Array.for_all Fun.id seen) then invalid_arg "Plan.v: unreachable ranks"

let v ~root ~children =
  validate ~root ~children;
  { root; children = Array.copy children }

let of_cluster_schedule ?(shape = Tree.Binomial) machines schedule =
  let grid = Machines.grid machines in
  let n_clusters = Gridb_topology.Grid.size grid in
  if schedule.Schedule.n <> n_clusters then
    invalid_arg "Plan.of_cluster_schedule: cluster count mismatch";
  let n = Machines.count machines in
  let children = Array.make n [] in
  (* Inter-cluster relays, per sender in round order. *)
  let inter = Array.make n_clusters [] in
  List.iter
    (fun e -> inter.(e.Schedule.src) <- e.Schedule.dst :: inter.(e.Schedule.src))
    schedule.Schedule.events;
  for c = 0 to n_clusters - 1 do
    let coordinator = Machines.coordinator machines c in
    let inter_children =
      List.rev_map (fun dst -> Machines.coordinator machines dst) inter.(c)
    in
    let size = (Gridb_topology.Grid.cluster grid c).Gridb_topology.Cluster.size in
    let tree = Tree.build shape size in
    (* Map intra-tree node indices onto this cluster's global ranks. *)
    let rec lay (node : Tree.t) =
      let rank = Machines.rank_of machines ~cluster:c ~index:node.Tree.node in
      let kid_ranks =
        List.map
          (fun (k : Tree.t) -> Machines.rank_of machines ~cluster:c ~index:k.Tree.node)
          node.Tree.children
      in
      children.(rank) <- children.(rank) @ kid_ranks;
      List.iter lay node.Tree.children
    in
    children.(coordinator) <- inter_children;
    lay tree
  done;
  let root = Machines.coordinator machines schedule.Schedule.root in
  validate ~root ~children;
  { root; children }

let of_flat_schedule machines schedule =
  let n = Machines.count machines in
  if schedule.Schedule.n <> n then
    invalid_arg "Plan.of_flat_schedule: machine count mismatch";
  let children = Array.make n [] in
  List.iter
    (fun e -> children.(e.Schedule.src) <- children.(e.Schedule.src) @ [ e.Schedule.dst ])
    schedule.Schedule.events;
  let root = schedule.Schedule.root in
  validate ~root ~children;
  { root; children }

let of_rank_tree machines ~root tree =
  let n = Machines.count machines in
  let children = Array.make n [] in
  (* Rotate node labels so tree node 0 lands on [root]. *)
  let relabel i = (i + root) mod n in
  let rec lay (node : Tree.t) =
    children.(relabel node.Tree.node) <-
      List.map (fun (k : Tree.t) -> relabel k.Tree.node) node.Tree.children;
    List.iter lay node.Tree.children
  in
  lay tree;
  validate ~root ~children;
  { root; children }

let binomial_ranks machines ~root =
  of_rank_tree machines ~root (Tree.binomial (Machines.count machines))

let flat_ranks machines ~root =
  of_rank_tree machines ~root (Tree.flat (Machines.count machines))

let size t = Array.length t.children

let depth t =
  let rec go r = List.fold_left (fun acc k -> max acc (1 + go k)) 0 t.children.(r) in
  go t.root

let parent_array t =
  let parents = Array.make (size t) t.root in
  Array.iteri (fun r kids -> List.iter (fun k -> parents.(k) <- r) kids) t.children;
  parents

let pair_scan_evaluations n =
  (* sum over rounds r = 1 .. n-1 of |A| * |B| = r * (n - r) *)
  let total = ref 0 in
  for r = 1 to n - 1 do
    total := !total + (r * (n - r))
  done;
  float_of_int !total

let lookahead_evaluations n =
  (* Each round additionally evaluates F_j for every j in B, each folding
     over the |B| - 1 members of B \ {j}. *)
  let total = ref 0 in
  for r = 1 to n - 1 do
    let b = n - r in
    total := !total + (b * (b - 1))
  done;
  float_of_int !total

let rec of_policy ~n policy =
  match Policy.shape policy with
  | Policy.Sized _ -> of_policy ~n (Policy.resolve ~n policy)
  | Policy.Root_first -> float_of_int n
  | Policy.Max_reach -> pair_scan_evaluations n
  | Policy.Select_min { lookahead; _ } -> (
      match lookahead.Lookahead.shape with
      | Lookahead.Zero -> pair_scan_evaluations n
      | Lookahead.Fold _ | Lookahead.Dynamic ->
          pair_scan_evaluations n +. lookahead_evaluations n)

let evaluations ~n heuristic =
  match Policy.by_name heuristic with
  | Some p -> of_policy ~n p
  | None ->
      (* Unknown names: keep the historical string-prefix guess. *)
      let canon = String.lowercase_ascii heuristic in
      if canon = "flattree" then float_of_int n
      else if String.length canon >= 7 && String.sub canon 0 7 = "ecef-la" then
        pair_scan_evaluations n +. lookahead_evaluations n
      else pair_scan_evaluations n

let default_per_evaluation_us = 0.5

let cost_us ?(per_evaluation_us = default_per_evaluation_us) ~n heuristic =
  evaluations ~n heuristic *. per_evaluation_us

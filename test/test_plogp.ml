(* Tests for gridb_plogp: piecewise functions, parameter sets, fitting. *)

module Piecewise = Gridb_plogp.Piecewise
module Params = Gridb_plogp.Params
module Fitting = Gridb_plogp.Fitting

let feq ?(eps = 1e-9) a b =
  let scale = Float.max 1. (Float.max (Float.abs a) (Float.abs b)) in
  Float.abs (a -. b) <= eps *. scale

let check_feq ?eps name expected actual =
  Alcotest.(check bool) (Printf.sprintf "%s: %g ~ %g" name expected actual) true
    (feq ?eps expected actual)

(* --- Piecewise --------------------------------------------------------- *)

let test_pw_exact_at_samples () =
  let f = Piecewise.of_points [ (0, 10.); (100, 20.); (1000, 110.) ] in
  check_feq "at 0" 10. (Piecewise.eval f 0);
  check_feq "at 100" 20. (Piecewise.eval f 100);
  check_feq "at 1000" 110. (Piecewise.eval f 1000)

let test_pw_interpolates () =
  let f = Piecewise.of_points [ (0, 0.); (100, 100.) ] in
  check_feq "midpoint" 50. (Piecewise.eval f 50);
  check_feq "quarter" 25. (Piecewise.eval f 25)

let test_pw_extrapolates_last_slope () =
  let f = Piecewise.of_points [ (0, 0.); (100, 100.) ] in
  check_feq "beyond" 250. (Piecewise.eval f 250)

let test_pw_constant_below_first () =
  let f = Piecewise.of_points [ (100, 7.); (200, 9.) ] in
  check_feq "below" 7. (Piecewise.eval f 10)

let test_pw_single_point_constant () =
  let f = Piecewise.of_points [ (64, 5.) ] in
  check_feq "anywhere" 5. (Piecewise.eval f 0);
  check_feq "anywhere2" 5. (Piecewise.eval f 1_000_000)

let test_pw_duplicate_keeps_last () =
  let f = Piecewise.of_points [ (10, 1.); (10, 2.) ] in
  check_feq "last wins" 2. (Piecewise.eval f 10)

let test_pw_unsorted_input () =
  let f = Piecewise.of_points [ (100, 20.); (0, 10.) ] in
  check_feq "sorted internally" 15. (Piecewise.eval f 50)

let test_pw_rejects () =
  Alcotest.check_raises "empty" (Invalid_argument "Piecewise.of_points: empty list")
    (fun () -> ignore (Piecewise.of_points []));
  Alcotest.check_raises "negative size"
    (Invalid_argument "Piecewise.of_points: negative size") (fun () ->
      ignore (Piecewise.of_points [ (-1, 0.) ]));
  let f = Piecewise.of_points [ (0, 0.) ] in
  Alcotest.check_raises "negative eval" (Invalid_argument "Piecewise.eval: negative size")
    (fun () -> ignore (Piecewise.eval f (-5)))

let test_pw_linear_matches_closed_form () =
  let f = Piecewise.linear ~intercept:3. ~slope:0.5 in
  List.iter
    (fun m -> check_feq (Printf.sprintf "linear at %d" m) (3. +. (0.5 *. float_of_int m)) (Piecewise.eval f m))
    [ 0; 1; 1000; 123_456; 10_000_000 ]

let test_pw_add_scale_map () =
  let f = Piecewise.of_points [ (0, 1.); (10, 2.) ] in
  let g = Piecewise.of_points [ (5, 10.) ] in
  check_feq "add" (1.5 +. 10.) (Piecewise.eval (Piecewise.add f g) 5);
  check_feq "scale" 4. (Piecewise.eval (Piecewise.scale 2. f) 10);
  check_feq "map" 3. (Piecewise.eval (Piecewise.map (fun v -> v +. 1.) f) 10)

let test_pw_monotonic () =
  Alcotest.(check bool) "increasing" true
    (Piecewise.is_monotonic (Piecewise.of_points [ (0, 1.); (10, 2.) ]));
  Alcotest.(check bool) "decreasing" false
    (Piecewise.is_monotonic (Piecewise.of_points [ (0, 2.); (10, 1.) ]))

let test_pw_interpolation_bounds =
  QCheck.Test.make ~name:"interpolation stays within segment bounds" ~count:(Testutil.count 300)
    QCheck.(pair (int_bound 500) (int_bound 500))
    (fun (a, b) ->
      let lo = min a b and hi = max a b + 1 in
      let f = Piecewise.of_points [ (lo, 1.); (hi, 3.) ] in
      let mid = lo + ((hi - lo) / 2) in
      let v = Piecewise.eval f mid in
      v >= 1. -. 1e-9 && v <= 3. +. 1e-9)

(* --- Params ------------------------------------------------------------ *)

let test_params_linear () =
  (* 10 MB/s = 10 bytes/us. *)
  let p = Params.linear ~latency:100. ~g0:5. ~bandwidth_mb_s:10. in
  check_feq "latency" 100. (Params.latency p);
  check_feq "gap 0" 5. (Params.gap p 0);
  check_feq "gap 1MB" (5. +. 100_000.) (Params.gap p 1_000_000);
  check_feq "send = g + L" (Params.gap p 4096 +. 100.) (Params.send_time p 4096);
  check_feq "sender busy" (Params.gap p 4096) (Params.sender_busy p 4096)

let test_params_overheads_default () =
  let p = Params.linear ~latency:10. ~g0:100. ~bandwidth_mb_s:1. in
  check_feq "os fraction" (Params.overhead_fraction *. Params.gap p 1000)
    (Params.send_overhead p 1000);
  check_feq "or fraction" (Params.overhead_fraction *. Params.gap p 1000)
    (Params.recv_overhead p 1000)

let test_params_rtt () =
  let p = Params.linear ~latency:50. ~g0:10. ~bandwidth_mb_s:100. in
  check_feq "rtt" ((2. *. 50.) +. Params.gap p 256 +. Params.gap p 0) (Params.rtt p 256)

let test_params_scale_noise () =
  let p = Params.linear ~latency:50. ~g0:10. ~bandwidth_mb_s:100. in
  let q = Params.scale_noise ~factor:2. p in
  check_feq "latency doubled" 100. (Params.latency q);
  check_feq "gap doubled" (2. *. Params.gap p 777) (Params.gap q 777);
  Alcotest.check_raises "factor <= 0"
    (Invalid_argument "Params.scale_noise: non-positive factor") (fun () ->
      ignore (Params.scale_noise ~factor:0. p))

let test_params_rejects () =
  Alcotest.check_raises "negative latency" (Invalid_argument "Params.v: negative latency")
    (fun () ->
      ignore (Params.v ~latency:(-1.) ~gap:(Piecewise.of_points [ (0, 1.) ]) ()));
  Alcotest.check_raises "bad bandwidth"
    (Invalid_argument "Params.linear: non-positive bandwidth") (fun () ->
      ignore (Params.linear ~latency:1. ~g0:1. ~bandwidth_mb_s:0.))

let test_params_equal () =
  let p = Params.linear ~latency:1. ~g0:2. ~bandwidth_mb_s:3. in
  let q = Params.linear ~latency:1. ~g0:2. ~bandwidth_mb_s:3. in
  Alcotest.(check bool) "equal" true (Params.equal p q);
  let r = Params.linear ~latency:1.5 ~g0:2. ~bandwidth_mb_s:3. in
  Alcotest.(check bool) "different" false (Params.equal p r)

let test_gap_monotonic_in_size =
  QCheck.Test.make ~name:"linear gap is monotone in message size" ~count:(Testutil.count 200)
    QCheck.(pair (int_bound 1_000_000) (int_bound 1_000_000))
    (fun (a, b) ->
      let p = Params.linear ~latency:10. ~g0:50. ~bandwidth_mb_s:4. in
      let lo = min a b and hi = max a b in
      Params.gap p lo <= Params.gap p hi +. 1e-9)

(* --- Fitting ------------------------------------------------------------ *)

let test_fit_linear_exact () =
  let samples =
    List.map
      (fun size -> { Fitting.size; time = 7. +. (0.25 *. float_of_int size) })
      [ 0; 100; 500; 1000; 5000 ]
  in
  let fit = Fitting.fit_linear samples in
  check_feq ~eps:1e-6 "intercept" 7. fit.Fitting.intercept;
  check_feq ~eps:1e-6 "slope" 0.25 fit.Fitting.slope;
  Alcotest.(check bool) "rmse ~ 0" true (fit.Fitting.rmse < 1e-6)

let test_fit_linear_single_size () =
  let samples = [ { Fitting.size = 100; time = 3. }; { Fitting.size = 100; time = 5. } ] in
  let fit = Fitting.fit_linear samples in
  check_feq "slope 0" 0. fit.Fitting.slope;
  check_feq "intercept mean" 4. fit.Fitting.intercept

let test_fit_table_min_reduction () =
  let samples =
    [
      { Fitting.size = 10; time = 5. };
      { Fitting.size = 10; time = 4. };
      { Fitting.size = 20; time = 9. };
    ]
  in
  let table = Fitting.fit_table samples in
  check_feq "min kept" 4. (Piecewise.eval table 10);
  check_feq "other size" 9. (Piecewise.eval table 20);
  let mean_table = Fitting.fit_table ~per_size_reduce:`Mean samples in
  check_feq "mean kept" 4.5 (Piecewise.eval mean_table 10)

let test_measurement_recovers_exactly_without_noise () =
  let truth = Params.linear ~latency:5_000. ~g0:100. ~bandwidth_mb_s:2. in
  let config = { Fitting.Measurement.default_config with noise_sigma = 0. } in
  let recovered = Fitting.Measurement.run config truth in
  List.iter
    (fun m ->
      check_feq ~eps:1e-6
        (Printf.sprintf "gap at %d" m)
        (Params.gap truth m) (Params.gap recovered m))
    [ 1; 1024; 65_536; 1_000_000 ];
  check_feq ~eps:1e-6 "latency" (Params.latency truth) (Params.latency recovered)

let test_measurement_recovers_with_noise () =
  let truth = Params.linear ~latency:5_000. ~g0:100. ~bandwidth_mb_s:2. in
  let config = { Fitting.Measurement.default_config with noise_sigma = 0.05 } in
  let recovered = Fitting.Measurement.run ~seed:9 config truth in
  List.iter
    (fun m ->
      let t = Params.gap truth m and r = Params.gap recovered m in
      Alcotest.(check bool)
        (Printf.sprintf "gap at %d within 15%%" m)
        true
        (Float.abs (r -. t) /. t < 0.15))
    [ 1024; 65_536; 1_000_000 ];
  let lt = Params.latency truth and lr = Params.latency recovered in
  Alcotest.(check bool) "latency within 15%" true (Float.abs (lr -. lt) /. lt < 0.15)

let test_fitting_rejects_empty () =
  Alcotest.check_raises "empty linear" (Invalid_argument "Fitting.fit_linear: empty input")
    (fun () -> ignore (Fitting.fit_linear []));
  Alcotest.check_raises "empty table" (Invalid_argument "Fitting.fit_table: empty input")
    (fun () -> ignore (Fitting.fit_table []))

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "plogp"
    [
      ( "piecewise",
        [
          quick "exact at samples" test_pw_exact_at_samples;
          quick "interpolates" test_pw_interpolates;
          quick "extrapolates" test_pw_extrapolates_last_slope;
          quick "constant below first" test_pw_constant_below_first;
          quick "single point" test_pw_single_point_constant;
          quick "duplicate keeps last" test_pw_duplicate_keeps_last;
          quick "unsorted input" test_pw_unsorted_input;
          quick "rejects" test_pw_rejects;
          quick "linear closed form" test_pw_linear_matches_closed_form;
          quick "add/scale/map" test_pw_add_scale_map;
          quick "monotonic check" test_pw_monotonic;
          QCheck_alcotest.to_alcotest test_pw_interpolation_bounds;
        ] );
      ( "params",
        [
          quick "linear" test_params_linear;
          quick "default overheads" test_params_overheads_default;
          quick "rtt" test_params_rtt;
          quick "scale noise" test_params_scale_noise;
          quick "rejects" test_params_rejects;
          quick "equality" test_params_equal;
          QCheck_alcotest.to_alcotest test_gap_monotonic_in_size;
        ] );
      ( "fitting",
        [
          quick "exact linear fit" test_fit_linear_exact;
          quick "single size" test_fit_linear_single_size;
          quick "table min reduction" test_fit_table_min_reduction;
          quick "noiseless recovery" test_measurement_recovers_exactly_without_noise;
          quick "noisy recovery" test_measurement_recovers_with_noise;
          quick "rejects empty" test_fitting_rejects_empty;
        ] );
    ]

type time_us = float
type bytes_ = int

let us x = x
let ms x = x *. 1e3
let seconds x = x *. 1e6
let to_ms t = t /. 1e3
let to_seconds t = t /. 1e6

let bytes n = n
let kib n = n * 1024
let mib n = n * 1024 * 1024
let mb n = n * 1_000_000

let pp_time ppf t =
  let a = Float.abs t in
  if a >= 1e6 then Format.fprintf ppf "%.3g s" (t /. 1e6)
  else if a >= 1e3 then Format.fprintf ppf "%.3g ms" (t /. 1e3)
  else Format.fprintf ppf "%.3g us" t

let pp_bytes ppf n =
  if n >= 1_000_000 && n mod 1_000_000 = 0 then
    Format.fprintf ppf "%d MB" (n / 1_000_000)
  else if n >= 1024 * 1024 && n mod (1024 * 1024) = 0 then
    Format.fprintf ppf "%d MiB" (n / (1024 * 1024))
  else if n >= 1024 && n mod 1024 = 0 then Format.fprintf ppf "%d KiB" (n / 1024)
  else Format.fprintf ppf "%d B" n

let time_to_string t = Format.asprintf "%a" pp_time t
let bytes_to_string n = Format.asprintf "%a" pp_bytes n

type t = {
  iterations : int;
  seed : int;
  msg : int;
  model : Gridb_sched.Schedule.completion_model;
  ranges : Gridb_sched.Instance.ranges;
}

let default =
  {
    iterations = 10_000;
    seed = 2006;
    msg = 1_000_000;
    model = Gridb_sched.Schedule.After_sends;
    ranges = Gridb_sched.Instance.table2_ranges;
  }

let quick = { default with iterations = 300 }

let with_iterations iterations t = { t with iterations }
let with_model model t = { t with model }

let point_rng t ~point =
  (* Derive a stream far from the base seed and from other points. *)
  Gridb_util.Rng.create (t.seed + (1_000_003 * (point + 1)))

type series = { label : string; points : (float * float) list }

let glyphs = [| 'a'; 'b'; 'c'; 'd'; 'e'; 'f'; 'g'; 'h'; 'i'; 'j'; 'k' |]

let data_range series =
  let xs = List.concat_map (fun s -> List.map fst s.points) series in
  let ys = List.concat_map (fun s -> List.map snd s.points) series in
  match (xs, ys) with
  | [], _ | _, [] -> None
  | x0 :: xrest, y0 :: yrest ->
      let fold = List.fold_left in
      let xmin = fold Float.min x0 xrest and xmax = fold Float.max x0 xrest in
      let ymin = fold Float.min y0 yrest and ymax = fold Float.max y0 yrest in
      Some (xmin, xmax, ymin, ymax)

let plot ?(width = 72) ?(height = 20) ?(x_label = "") ?(y_label = "") ~title series =
  let series = List.filter (fun s -> s.points <> []) series in
  match data_range series with
  | None -> title ^ "\n(no data)\n"
  | Some (xmin, xmax, ymin, ymax) ->
      let xspan = if xmax > xmin then xmax -. xmin else 1. in
      let yspan = if ymax > ymin then ymax -. ymin else 1. in
      let grid = Array.make_matrix height width ' ' in
      let place gi x y =
        let cx =
          int_of_float (Float.round ((x -. xmin) /. xspan *. float_of_int (width - 1)))
        in
        let cy =
          int_of_float (Float.round ((y -. ymin) /. yspan *. float_of_int (height - 1)))
        in
        let row = height - 1 - cy in
        if row >= 0 && row < height && cx >= 0 && cx < width then begin
          let existing = grid.(row).(cx) in
          (* An overlap of several series is marked '*'. *)
          grid.(row).(cx) <- (if existing = ' ' || existing = gi then gi else '*')
        end
      in
      List.iteri
        (fun i s ->
          let g = glyphs.(i mod Array.length glyphs) in
          List.iter (fun (x, y) -> place g x y) s.points)
        series;
      let buf = Buffer.create ((width + 16) * (height + 6)) in
      Buffer.add_string buf (title ^ "\n");
      if y_label <> "" then Buffer.add_string buf (y_label ^ "\n");
      let ylab_width = 10 in
      for row = 0 to height - 1 do
        let yval = ymax -. (float_of_int row /. float_of_int (height - 1) *. yspan) in
        let lbl =
          if row = 0 || row = height - 1 || row = height / 2 then
            Printf.sprintf "%*.4g |" (ylab_width - 2) yval
          else String.make (ylab_width - 1) ' ' ^ "|"
        in
        Buffer.add_string buf lbl;
        Buffer.add_string buf (String.init width (fun c -> grid.(row).(c)));
        Buffer.add_char buf '\n'
      done;
      Buffer.add_string buf (String.make (ylab_width - 1) ' ' ^ "+" ^ String.make width '-');
      Buffer.add_char buf '\n';
      let xmin_s = Printf.sprintf "%.4g" xmin and xmax_s = Printf.sprintf "%.4g" xmax in
      let gap = max 1 (width - String.length xmin_s - String.length xmax_s) in
      Buffer.add_string buf
        (String.make ylab_width ' ' ^ xmin_s ^ String.make gap ' ' ^ xmax_s ^ "\n");
      if x_label <> "" then
        Buffer.add_string buf (String.make ylab_width ' ' ^ x_label ^ "\n");
      Buffer.add_string buf "legend:";
      List.iteri
        (fun i s ->
          Buffer.add_string buf
            (Printf.sprintf " %c=%s" glyphs.(i mod Array.length glyphs) s.label))
        series;
      Buffer.add_char buf '\n';
      Buffer.contents buf

let print ?width ?height ?x_label ?y_label ~title series =
  print_string (plot ?width ?height ?x_label ?y_label ~title series)

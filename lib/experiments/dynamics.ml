module Policy = Gridb_sched.Policy
module Sched_engine = Gridb_sched.Engine
module Instance = Gridb_sched.Instance
module Repair = Gridb_sched.Repair
module Replan = Gridb_sched.Replan
module Machines = Gridb_topology.Machines
module Grid = Gridb_topology.Grid
module Faults = Gridb_des.Faults
module Dyn = Gridb_des.Dynamics
module Adaptive = Gridb_des.Adaptive
module Plan = Gridb_des.Plan
module Exec = Gridb_des.Exec
module Noise = Gridb_des.Noise
module Sink = Gridb_obs.Sink

type tick = { at : float; drift : float; divergence : float }

type outcome = {
  policy : string;
  dyn : Dyn.spec;
  spec : Faults.spec;
  seed : int;
  clusters : int;
  total_ranks : int;
  delivered : int;
  delivery_ratio : float;
  makespan : float;
  horizon : float;
  left_ranks : int;
  joined_ranks : int;
  ticks : tick list;
  final_drift : float;
  final_divergence : float;
  departed_clusters : int;
  decision : Replan.decision;
  ride_out : Replan.verdict;
  splice : Replan.verdict;
  replan : Replan.verdict;
}

let chosen o =
  match o.decision with
  | Replan.Ride_out -> o.ride_out
  | Replan.Splice -> o.splice
  | Replan.Replan -> o.replan

let divergence est =
  let n = Adaptive.size est in
  let sum = ref 0. and cnt = ref 0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j && Adaptive.samples est ~src:i ~dst:j > 0 then begin
        sum := !sum +. Float.abs (Adaptive.quality est ~src:i ~dst:j -. 1.);
        incr cnt
      end
    done
  done;
  if !cnt = 0 then 0. else !sum /. float_of_int !cnt

let run ?(policy = Policy.ecef_la) ?(msg = 1_000_000) ?(retries = 5) ?(seed = 0)
    ?(noise = Noise.Exact) ?(obs = Sink.null)
    ?(transport = Exec.adaptive ~reroute:true ()) ?(thresholds = Replan.default)
    ?(spec = Faults.none) ~dyn grid =
  let inst = Instance.of_grid ~root:0 ~msg grid in
  let schedule = Sched_engine.run ~obs policy inst in
  let machines = Machines.expand grid in
  let plan = Plan.of_cluster_schedule machines schedule in
  let n = Machines.count machines in
  let nc = Grid.size grid in
  let faults = Faults.create ~seed ~n spec in
  (* Same tagged-seed derivation as Robustness.run: the dynamics draws are
     independent of the fault draws, and both experiments agree on the
     same models at the same seed. *)
  let dmodel =
    if Dyn.is_none dyn then None
    else Some (Dyn.create ~seed:(seed lxor 0x64796e) ~n ~clusters:nc dyn)
  in
  let rng = Gridb_util.Rng.create seed in
  (* The re-clustering trail: at each period boundary the executor hands
     the live estimator to this hook; Lowekamp re-runs on the estimated
     machine matrix and the partition is diffed against plan time.  The
     hook observes only — the run's event stream is the same with the
     trail disabled. *)
  let trail = ref [] in
  let on_tick ~now est =
    match est with
    | None -> ()
    | Some est ->
        trail :=
          { at = now; drift = Robustness.partition_drift est machines; divergence = divergence est }
          :: !trail
  in
  let rel =
    Exec.run_reliable ~noise ~rng ~msg ~faults ?dynamics:dmodel ~on_tick
      ~tick_every:dyn.Dyn.recluster_every ~retries ~obs ~transport machines plan
  in
  let horizon = rel.Exec.horizon in
  (* Cluster-level halt vector at the decision instant: crash or departure
     of the coordinator, within the horizon only. *)
  let halt =
    Array.init nc (fun c ->
        let coord = Machines.coordinator machines c in
        let t = ref infinity in
        if List.mem coord rel.Exec.crashed then t := Faults.crash_time faults coord;
        (match dmodel with
        | Some d when List.mem coord rel.Exec.left ->
            t := Float.min !t (Dyn.leave_time d coord)
        | _ -> ());
        !t)
  in
  let departed = Array.fold_left (fun a t -> if Float.is_finite t then a + 1 else a) 0 halt in
  let final_drift, final_divergence, i_est =
    match rel.Exec.estimator with
    | None -> (0., 0., inst)
    | Some est ->
        ( Robustness.partition_drift est machines,
          divergence est,
          Robustness.estimated_instance est machines inst )
  in
  let decision =
    Replan.decide thresholds ~drift:final_drift ~divergence:final_divergence ~departed
  in
  (* The three candidate responses, all as cluster-level schedules.  The
     full replan is Repair applied to the event-free schedule: sources =
     {root}, orphans = every alive cluster, replanned from the estimated
     instance no earlier than the decision instant. *)
  let splice_schedule =
    (Repair.repair ~policy ~at:horizon i_est schedule ~crash:halt).Repair.schedule
  in
  let replan_schedule =
    (Repair.repair ~policy ~at:horizon i_est
       (Replan.fresh ~root:inst.Instance.root ~n:nc)
       ~crash:halt)
      .Repair.schedule
  in
  (* Ground truth at the decision instant: nominal inter-cluster matrices
     scaled by the actual drift factor on each coordinator link, frozen at
     the horizon.  (Intra-cluster times stay nominal: the dynamics model
     drifts the wide-area links the paper's heuristics reason about.) *)
  let truth =
    match dmodel with
    | None -> inst
    | Some d ->
        let coord = Machines.coordinator machines in
        let scale m =
          Array.init nc (fun i ->
              Array.init nc (fun j ->
                  if i = j then m.(i).(j)
                  else m.(i).(j) *. Dyn.factor d ~src:(coord i) ~dst:(coord j) ~at:horizon))
        in
        Instance.v ~root:inst.Instance.root
          ~latency:(scale inst.Instance.latency)
          ~gap:(scale inst.Instance.gap) ~intra:inst.Instance.intra
  in
  let judge = Replan.evaluate truth ~halt in
  let ntot = n + List.length rel.Exec.joined in
  {
    policy = Policy.name policy;
    dyn;
    spec;
    seed;
    clusters = nc;
    total_ranks = ntot;
    delivered = rel.Exec.delivered;
    delivery_ratio = float_of_int rel.Exec.delivered /. float_of_int ntot;
    makespan = rel.Exec.r_makespan;
    horizon;
    left_ranks = List.length rel.Exec.left;
    joined_ranks = List.length rel.Exec.joined;
    ticks = List.rev !trail;
    final_drift;
    final_divergence;
    departed_clusters = departed;
    decision;
    ride_out = judge schedule;
    splice = judge splice_schedule;
    replan = judge replan_schedule;
  }

let render o =
  let table =
    Gridb_util.Text_table.create
      ~align:Gridb_util.Text_table.[ Left; Right ]
      [ "metric"; "value" ]
  in
  let add label value = Gridb_util.Text_table.add_row table [ label; value ] in
  add "policy" o.policy;
  add "dynamics spec" (Dyn.to_string o.dyn);
  add "fault spec" (Faults.to_string o.spec);
  add "seed" (string_of_int o.seed);
  Gridb_util.Text_table.add_separator table;
  add "clusters" (string_of_int o.clusters);
  add "ranks (incl. joins)" (string_of_int o.total_ranks);
  add "delivered" (string_of_int o.delivered);
  add "delivery ratio" (Printf.sprintf "%.4f" o.delivery_ratio);
  add "ranks departed" (string_of_int o.left_ranks);
  add "ranks joined" (string_of_int o.joined_ranks);
  add "observed makespan (s)" (Printf.sprintf "%.4f" (o.makespan /. 1e6));
  add "horizon (s)" (Printf.sprintf "%.4f" (o.horizon /. 1e6));
  Gridb_util.Text_table.add_separator table;
  add "re-cluster ticks" (string_of_int (List.length o.ticks));
  add "partition drift" (Printf.sprintf "%.4f" o.final_drift);
  add "estimator divergence" (Printf.sprintf "%.4f" o.final_divergence);
  add "departed clusters" (string_of_int o.departed_clusters);
  add "decision" (Replan.decision_to_string o.decision);
  Gridb_util.Text_table.add_separator table;
  let verdict label (v : Replan.verdict) =
    add
      (Printf.sprintf "%s: delivered/stranded" label)
      (Printf.sprintf "%d/%d" v.Replan.delivered_count v.Replan.stranded);
    add
      (Printf.sprintf "%s: makespan (s)" label)
      (Printf.sprintf "%.4f" (v.Replan.makespan /. 1e6))
  in
  verdict "ride-out" o.ride_out;
  verdict "splice" o.splice;
  verdict "replan" o.replan;
  Gridb_util.Text_table.render table

(** Selection policies: what a heuristic {e is}, separated from how a
    schedule is computed.

    A policy is a declarative score descriptor — a per-pair score, an
    optional per-receiver lookahead term, and (through {!pair_score} and
    {!Lookahead.shape}) an invalidation contract saying which parts of the
    score a {!State.send} can change.  {!Engine} consumes the descriptor
    and runs it either as the paper's naive full A×B scan or as an
    incremental selector with per-receiver caches; both produce the exact
    schedule the reference scan defines, including ascending-(i, j)
    tie-breaking.

    {!Heuristics} keeps the historical closure-based record as a thin
    wrapper over this module. *)

type pair_score =
  | Latency  (** [L_ij] — FEF.  Static: no {!State.send} invalidates it. *)
  | Transmission
      (** [g_ij + L_ij] — the FEF ablation edge weight.  Static. *)
  | Arrival
      (** [avail_i + g_ij + L_ij] — the ECEF family.  A send from [i]
          advances [avail_i] and so invalidates exactly the pairs whose
          sender is [i]; everything else is untouched. *)

val score_depends_on_avail : pair_score -> bool

val arrival_score : avail:float -> gap:float -> latency:float -> float
(** The ECEF pair score, [avail + g + L]: earliest completion of a single
    edge from a sender free at [avail].  {!Gridb_sched.State.score_arrival}
    evaluates it on an instance; the adaptive transport's in-flight reroute
    ({!Gridb_des.Adaptive}) ranks candidate parents with the same metric
    over {e live-estimated} link parameters. *)

type t

and shape =
  | Root_first
      (** The root serves the smallest-id member of [B] each round
          (FlatTree / ECO / MagPIe). *)
  | Select_min of { score : pair_score; lookahead : Lookahead.t }
      (** Minimise [score(i, j) + F_j] over A×B; ties towards the
          lexicographically smallest [(i, j)]. *)
  | Max_reach
      (** BottomUp: serve the receiver whose best
          [min_i score_arrival(i, j) + T_j] is largest (ties towards the
          smallest [j]), using that best sender (ties towards the smallest
          [i]). *)
  | Sized of { threshold : int; small : t; large : t }
      (** Section 6 mixed strategy: dispatch on the instance size. *)

val name : t -> string
val shape : t -> shape

val v : name:string -> shape -> t
(** Custom policy. *)

val flat_tree : t
val fef : t
val ecef : t
val ecef_la : t
val ecef_lat_min : t
val ecef_lat_max : t
val bottom_up : t

val all : t list
(** The seven paper heuristics, in paper order (same order and names as
    {!Heuristics.all}). *)

val names : string list
(** [List.map name all] — {e the} policy name table.  Every surface that
    enumerates policies (the CLI's [--heuristic] parser and its error
    message, [gridsched check --list], the fuzzer's scenario menu) derives
    from this list, so the registry and its listings cannot drift. *)

val select_min : ?name:string -> score:pair_score -> Lookahead.t -> t
(** General minimising policy; default name ["ECEF-LA<lookahead>"]. *)

val ecef_with : ?name:string -> Lookahead.t -> t
(** [select_min ~score:Arrival]. *)

val sized : threshold:int -> small:t -> large:t -> t
(** Named ["Mixed<small|large@threshold>"].
    @raise Invalid_argument if [threshold < 1]. *)

val resolve : n:int -> t -> t
(** Unwrap {!Sized} dispatch for an [n]-cluster instance; the result's
    shape is never [Sized]. *)

val by_name : string -> t option
(** Lookup: exact name first among {!all}; then the parameterised forms
    ["ECEF-LA<lookahead>"] and ["Mixed<small|large@threshold>"]
    (components may themselves be parameterised); finally a
    case-insensitive match {e only when unambiguous} — "ecef-lat" matches
    both ECEF-LAt and ECEF-LAT, so it resolves to [None]; spell those two
    exactly. *)

type outcome = {
  schedule : Schedule.t;
  executed : int;
  replanned : Schedule.event list;
  delivered : bool array;
  sources : int list;
  orphans : int list;
  abandoned : int list;
  dead : int list;
  makespan : float;
}

(* Replay the schedule under the crash vector: which events executed, who
   ended up holding the message, and each coordinator's ready/busy times. *)
let replay inst (schedule : Schedule.t) ~crash =
  let n = inst.Instance.n in
  let delivered = Array.make n false in
  let ready = Array.make n infinity in
  let avail = Array.make n infinity in
  delivered.(schedule.Schedule.root) <- true;
  ready.(schedule.Schedule.root) <- 0.;
  avail.(schedule.Schedule.root) <- 0.;
  let executed =
    List.filter
      (fun (e : Schedule.event) ->
        if delivered.(e.Schedule.src) && crash.(e.Schedule.src) > e.Schedule.start
        then begin
          (* The sender pays the gap even when the receiver is dead. *)
          avail.(e.Schedule.src) <- e.Schedule.sender_free;
          if crash.(e.Schedule.dst) > e.Schedule.arrival then begin
            delivered.(e.Schedule.dst) <- true;
            ready.(e.Schedule.dst) <- e.Schedule.arrival;
            avail.(e.Schedule.dst) <- e.Schedule.arrival
          end;
          true
        end
        else false)
      schedule.Schedule.events
  in
  (executed, delivered, ready, avail)

let renumber events =
  List.mapi (fun round (e : Schedule.event) -> { e with Schedule.round }) events

let repair ?(policy = Policy.ecef_la) ?at inst (schedule : Schedule.t) ~crash =
  let n = inst.Instance.n in
  if Array.length crash <> n then invalid_arg "Repair.repair: crash vector size mismatch";
  let at =
    match at with
    | Some t -> t
    | None ->
        Array.fold_left
          (fun acc t -> if Float.is_finite t then Float.max acc t else acc)
          0. crash
  in
  let executed, delivered, ready, avail = replay inst schedule ~crash in
  let alive c = crash.(c) > at in
  let ids = List.init n Fun.id in
  let dead = List.filter (fun c -> not (alive c)) ids in
  let sources = List.filter (fun c -> delivered.(c) && alive c) ids in
  let orphans = List.filter (fun c -> (not delivered.(c)) && alive c) ids in
  let finish ~replanned ~abandoned ~events =
    let ready = Array.copy ready and busy = Array.copy avail in
    List.iter
      (fun c ->
        ready.(c) <- infinity;
        busy.(c) <- infinity)
      (dead @ abandoned);
    let makespan = ref 0. in
    Array.iteri
      (fun c d ->
        if d && alive c then
          makespan := Float.max !makespan (busy.(c) +. inst.Instance.intra.(c)))
      delivered;
    {
      schedule =
        {
          Schedule.root = schedule.Schedule.root;
          n;
          events = renumber events;
          ready;
          busy_until = busy;
        };
      executed = List.length executed;
      replanned;
      delivered;
      sources;
      orphans;
      abandoned;
      dead;
      makespan = !makespan;
    }
  in
  if orphans = [] then finish ~replanned:[] ~abandoned:[] ~events:executed
  else if sources = [] then finish ~replanned:[] ~abandoned:orphans ~events:executed
  else begin
    (* Residual instance over the surviving clusters only, renumbered
       0 .. n' - 1 in ascending original id. *)
    let survivors = Array.of_list (sources @ orphans) in
    Array.sort compare survivors;
    let n' = Array.length survivors in
    let back = survivors in
    let fwd = Array.make n (-1) in
    Array.iteri (fun i c -> fwd.(c) <- i) back;
    (* Sources may not inject repair transmissions before the detection
       instant; their ready time is history and carries over unchanged. *)
    let seeded =
      List.map (fun c -> (fwd.(c), ready.(c), Float.max avail.(c) at)) sources
    in
    let root_orig =
      List.fold_left
        (fun best c ->
          let a = Float.max avail.(c) at and b = Float.max avail.(best) at in
          if a < b || (a = b && c < best) then c else best)
        (List.hd sources) sources
    in
    let sub m = Array.init n' (fun i -> Array.init n' (fun j -> m.(back.(i)).(back.(j)))) in
    let residual =
      Instance.v ~root:fwd.(root_orig)
        ~latency:(sub inst.Instance.latency)
        ~gap:(sub inst.Instance.gap)
        ~intra:(Array.init n' (fun i -> inst.Instance.intra.(back.(i))))
    in
    let state = State.create_seeded residual ~sources:seeded in
    (* The residual is small (survivors only): the reference naive selector
       is plenty, and it is the tie-breaking oracle the engine reproduces. *)
    while not (State.finished state) do
      let src, dst = Engine.naive_select policy state in
      State.send state ~src ~dst
    done;
    let residual_schedule = State.to_schedule state in
    let replanned =
      List.map
        (fun (e : Schedule.event) ->
          { e with Schedule.src = back.(e.Schedule.src); dst = back.(e.Schedule.dst) })
        residual_schedule.Schedule.events
    in
    List.iter
      (fun (e : Schedule.event) ->
        delivered.(e.Schedule.dst) <- true;
        ready.(e.Schedule.dst) <- e.Schedule.arrival;
        avail.(e.Schedule.dst) <- e.Schedule.arrival;
        avail.(e.Schedule.src) <- Float.max avail.(e.Schedule.src) e.Schedule.sender_free)
      replanned;
    finish ~replanned ~abandoned:[] ~events:(executed @ replanned)
  end

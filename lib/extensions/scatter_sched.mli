(** Grid-aware scheduling for the scatter pattern (the paper's future work,
    Section 8: "development of efficient communication schedules for other
    communication patterns like scatter and alltoall").

    Hierarchical scatter: the root coordinator sends each cluster [c] one
    aggregated block of [msg_per_proc * size_c] bytes; [c]'s coordinator
    then scatters it internally.  Unlike broadcast, blocks are distinct so
    relaying through other clusters buys nothing (it only adds volume) and
    the whole problem reduces to {e ordering} the root's sends.  With
    per-cluster delivery tails [q_c = L_c + T_scatter_c] this is the
    classical one-machine scheduling problem 1 || Lmax-with-delivery-times,
    for which Jackson's Longest-Delivery-Time-first rule is optimal — the
    kind of structural win the paper's grid-aware viewpoint anticipates. *)

type evaluation = {
  order : int list;  (** cluster ids in send order (root excluded) *)
  makespan : float;  (** us *)
  per_cluster : (int * float) array;  (** cluster id, completion time *)
}

val evaluate :
  Gridb_topology.Grid.t -> root:int -> msg_per_proc:int -> int list -> evaluation
(** Evaluate a given send order.  @raise Invalid_argument unless the order
    is a permutation of the non-root clusters. *)

val in_order : Gridb_topology.Grid.t -> root:int -> int list
(** Index order — the baseline a topology-unaware MagPIe would use. *)

val fastest_edge_first : Gridb_topology.Grid.t -> root:int -> msg_per_proc:int -> int list
(** Ascending aggregated send time [g(m_c) + L] — FEF's analogue. *)

val longest_delivery_first :
  Gridb_topology.Grid.t -> root:int -> msg_per_proc:int -> int list
(** Jackson's rule: descending tail [L_c + T_scatter_c].  Optimal for this
    model (proved by the standard exchange argument; asserted against
    {!optimal_order} in the tests). *)

val optimal_order :
  ?max_clusters:int -> Gridb_topology.Grid.t -> root:int -> msg_per_proc:int -> int list
(** Brute force over all orders (default ceiling 9 clusters).
    @raise Invalid_argument above the ceiling. *)

val intra_scatter_time : Gridb_topology.Grid.t -> int -> msg_per_proc:int -> float
(** [T_scatter_c]: linear scatter inside cluster [c]. *)

type t = {
  latency : float;
  gap : Piecewise.t;
  os : Piecewise.t;
  or_ : Piecewise.t;
}

let overhead_fraction = 0.05

let v ?os ?or_ ~latency ~gap () =
  if latency < 0. then invalid_arg "Params.v: negative latency";
  let default () = Piecewise.scale overhead_fraction gap in
  {
    latency;
    gap;
    os = (match os with Some x -> x | None -> default ());
    or_ = (match or_ with Some x -> x | None -> default ());
  }

let linear ~latency ~g0 ~bandwidth_mb_s =
  if g0 < 0. then invalid_arg "Params.linear: negative g0";
  if bandwidth_mb_s <= 0. then invalid_arg "Params.linear: non-positive bandwidth";
  (* 1 MB/s = 10^6 bytes / 10^6 us = 1 byte per microsecond. *)
  let slope = 1. /. bandwidth_mb_s in
  v ~latency ~gap:(Piecewise.linear ~intercept:g0 ~slope) ()

let latency t = t.latency
let gap t m = Piecewise.eval t.gap m
let send_overhead t m = Piecewise.eval t.os m
let recv_overhead t m = Piecewise.eval t.or_ m
let gap_table t = t.gap
let send_time t m = gap t m +. t.latency
let sender_busy t m = gap t m
let rtt t m = (2. *. t.latency) +. gap t m +. gap t 0

let scale_noise ~factor t =
  if factor <= 0. then invalid_arg "Params.scale_noise: non-positive factor";
  {
    latency = t.latency *. factor;
    gap = Piecewise.scale factor t.gap;
    os = Piecewise.scale factor t.os;
    or_ = Piecewise.scale factor t.or_;
  }

let rescale ?(gap_factor = 1.) ?(latency_factor = 1.) t =
  if gap_factor <= 0. then invalid_arg "Params.rescale: non-positive gap_factor";
  if latency_factor <= 0. then invalid_arg "Params.rescale: non-positive latency_factor";
  {
    latency = t.latency *. latency_factor;
    gap = Piecewise.scale gap_factor t.gap;
    os = Piecewise.scale gap_factor t.os;
    or_ = Piecewise.scale gap_factor t.or_;
  }

let pp ppf t =
  Format.fprintf ppf "@[<h>{L=%.3g us; g=%a}@]" t.latency Piecewise.pp t.gap

let equal a b =
  Float.equal a.latency b.latency
  && Piecewise.points a.gap = Piecewise.points b.gap
  && Piecewise.points a.os = Piecewise.points b.os
  && Piecewise.points a.or_ = Piecewise.points b.or_

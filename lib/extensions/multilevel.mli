(** Multilevel (Karonis-style, Table 1) hierarchical broadcast.

    The related-work section describes MPICH-G2's multilevel hierarchy: WAN
    links between sites (level 0), LAN links between clusters of one site
    (level 1), fast local networks inside clusters (level 2+).  This module
    composes the paper's heuristics at {e two} inter-cluster levels: one
    schedule among site representatives over WAN links, then one schedule
    per site among its clusters over LAN links, then intra-cluster trees —
    overlapping communication between levels exactly as Karonis proposes.

    The resulting rank-level {!Gridb_des.Plan.t} is directly comparable (via
    {!Gridb_des.Exec}) with the single-level hierarchical plans, which is
    what the multilevel ablation bench reports. *)

val representatives : site_of_cluster:(int -> int) -> n_clusters:int -> root:int -> int array
(** One representative cluster per site: the root's cluster for its site,
    the lowest-numbered cluster elsewhere.  Result is indexed by site id;
    site ids must be dense in [0 .. n_sites - 1].
    @raise Invalid_argument on an empty grid or out-of-range mapping. *)

val plan :
  ?site_heuristic:Gridb_sched.Heuristics.t ->
  ?cluster_heuristic:Gridb_sched.Heuristics.t ->
  ?shape:Gridb_collectives.Tree.shape ->
  site_of_cluster:(int -> int) ->
  root:int ->
  msg:int ->
  Gridb_topology.Machines.t ->
  Gridb_des.Plan.t
(** Three-level plan rooted at cluster [root]'s coordinator.  Defaults:
    ECEF-LA at the site level, ECEF at the cluster level, binomial intra
    trees.  The site-level instance uses, as each representative's
    intra time [T], the predicted completion of its whole site (its own
    cluster-level schedule makespan), so the WAN schedule is "site-aware"
    in the same way the paper's heuristics are cluster-aware. *)

val flat_sites_plan :
  ?shape:Gridb_collectives.Tree.shape ->
  site_of_cluster:(int -> int) ->
  root:int ->
  msg:int ->
  Gridb_topology.Machines.t ->
  Gridb_des.Plan.t
(** Baseline: flat tree among site representatives, flat trees inside each
    site (the ECO / MagPIe strategy lifted to three levels). *)

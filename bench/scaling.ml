(* Scaling benchmark for the selection engine: every paper heuristic at
   n = 16 .. 1024 clusters, naive reference scan vs incremental engine,
   emitting machine-readable results to BENCH_scaling.json.

   Usage: dune exec bench/scaling.exe -- [--max-n N] [--max-naive-n N]
                                         [-o FILE] [--seed S] [--jobs J]

   The two modes are verified to produce identical schedules on every
   (heuristic, n) cell they both run, so the speedup column compares like
   with like.  CI runs this capped at --max-n 128 as a smoke test; the
   committed BENCH_scaling.json comes from a full local run. *)

module Instance = Gridb_sched.Instance
module Schedule = Gridb_sched.Schedule
module Policy = Gridb_sched.Policy
module Engine = Gridb_sched.Engine
module Heuristics = Gridb_sched.Heuristics
module Rng = Gridb_util.Rng

type cell = {
  heuristic : string;
  n : int;
  incremental_ms : float;
  incremental_evals : int;
  naive_ms : float option; (* None when capped out by --max-naive-n *)
  naive_evals : int option;
  identical : bool option;
}

let sizes = [ 16; 32; 64; 128; 256; 512; 1024 ]

(* Wall-clock one run; repeat (short runs until ~50 ms of total work, long
   runs at least 3 times) and report the MINIMUM.  On a shared box a single
   300 ms run can read anywhere up to 3x its true cost; the minimum over a
   few repetitions is the standard robust floor estimator and makes the
   committed JSON comparable across runs. *)
let time_run f =
  let once () =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, (Unix.gettimeofday () -. t0) *. 1e3)
  in
  let r, first = once () in
  let reps =
    if first >= 50. then 3
    else min 1_000 (1 + int_of_float (50. /. Float.max first 0.001))
  in
  let best = ref first in
  for _ = 2 to reps do
    let _, t = once () in
    if t < !best then best := t
  done;
  (r, !best)

let bench_cell ~max_naive_n ~seed policy n =
  let rng = Rng.create (seed + n) in
  let inst = Instance.random ~rng ~n Instance.table2_ranges in
  let run mode () = Engine.run_stats ~mode policy inst in
  let (incr_sched, incr_stats), incremental_ms = time_run (run `Incremental) in
  let incremental_evals =
    incr_stats.Engine.pair_evaluations + incr_stats.Engine.lookahead_terms
  in
  if n > max_naive_n then
    {
      heuristic = Policy.name policy;
      n;
      incremental_ms;
      incremental_evals;
      naive_ms = None;
      naive_evals = None;
      identical = None;
    }
  else begin
    let (naive_sched, naive_stats), naive_ms = time_run (run `Naive) in
    {
      heuristic = Policy.name policy;
      n;
      incremental_ms;
      incremental_evals;
      naive_ms = Some naive_ms;
      naive_evals =
        Some (naive_stats.Engine.pair_evaluations + naive_stats.Engine.lookahead_terms);
      identical = Some (naive_sched.Schedule.events = incr_sched.Schedule.events);
    }
  end

(* Handwritten JSON writer — the toolchain has no JSON library and the
   schema is flat enough not to want one. *)
let json_of_cells buf cells =
  let add fmt = Printf.bprintf buf fmt in
  let opt_float = function None -> "null" | Some v -> Printf.sprintf "%.4f" v in
  let opt_int = function None -> "null" | Some v -> string_of_int v in
  let opt_bool = function None -> "null" | Some b -> string_of_bool b in
  add "[\n";
  List.iteri
    (fun i c ->
      add
        "  {\"heuristic\": %S, \"n\": %d, \"incremental_ms\": %.4f, \
         \"incremental_evals\": %d, \"naive_ms\": %s, \"naive_evals\": %s, \
         \"speedup\": %s, \"identical\": %s}%s\n"
        c.heuristic c.n c.incremental_ms c.incremental_evals (opt_float c.naive_ms)
        (opt_int c.naive_evals)
        (match c.naive_ms with
        | Some nv when c.incremental_ms > 0. ->
            Printf.sprintf "%.2f" (nv /. c.incremental_ms)
        | _ -> "null")
        (opt_bool c.identical)
        (if i = List.length cells - 1 then "" else ","))
    cells;
  add "]"

let print_cell c =
  Printf.printf "%-10s n=%-5d incremental %8.2f ms%s%s\n%!" c.heuristic c.n
    c.incremental_ms
    (match c.naive_ms with
    | Some v ->
        Printf.sprintf "   naive %8.2f ms   speedup %6.2fx" v
          (v /. Float.max c.incremental_ms 1e-9)
    | None -> "   naive skipped")
    (match c.identical with Some false -> "   SCHEDULES DIFFER" | _ -> "")

let () =
  let max_n = ref 1024
  and max_naive_n = ref 1024
  and out = ref "BENCH_scaling.json"
  and seed = ref 2006
  and jobs = ref 1 in
  let rec parse = function
    | [] -> ()
    | "--max-n" :: v :: rest ->
        max_n := int_of_string v;
        parse rest
    | "--max-naive-n" :: v :: rest ->
        max_naive_n := int_of_string v;
        parse rest
    | ("-o" | "--output") :: v :: rest ->
        out := v;
        parse rest
    | "--seed" :: v :: rest ->
        seed := int_of_string v;
        parse rest
    | ("-j" | "--jobs") :: v :: rest ->
        jobs := int_of_string v;
        parse rest
    | other :: _ ->
        prerr_endline
          ("unknown option " ^ other
         ^ " (known: --max-n N, --max-naive-n N, -o FILE, --seed S, --jobs J)");
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let sizes = List.filter (fun n -> n <= !max_n) sizes in
  let policies = List.filter_map (fun h -> h.Heuristics.policy) Heuristics.all in
  (* --jobs fans cells out over a Pool — useful for a quick CI sweep where
     throughput matters more than timing fidelity.  The default stays 1:
     concurrent cells contend for cores and caches, so committed timing
     runs should be sequential.  Cells print as they complete under
     jobs=1, all together (in deterministic grid order) otherwise. *)
  let work =
    Array.of_list
      (List.concat_map (fun n -> List.map (fun p -> (p, n)) policies) sizes)
  in
  let cells_arr =
    Gridb_util.Pool.map ~jobs:!jobs
      (fun (p, n) ->
        let c = bench_cell ~max_naive_n:!max_naive_n ~seed:!seed p n in
        if !jobs <= 1 then print_cell c;
        c)
      work
  in
  if !jobs > 1 then Array.iter print_cell cells_arr;
  let cells = Array.to_list cells_arr in
  (match List.filter (fun c -> c.identical = Some false) cells with
  | [] -> ()
  | bad ->
      List.iter
        (fun c -> Printf.eprintf "MISMATCH: %s at n=%d\n" c.heuristic c.n)
        bad;
      exit 1);
  let buf = Buffer.create 4_096 in
  Printf.bprintf buf
    "{\n\
    \  \"benchmark\": \"engine-scaling\",\n\
    \  \"seed\": %d,\n\
    \  %s,\n\
    \  \"instance\": \"Instance.random table2_ranges, one per n\",\n\
    \  \"timing\": \"min over repetitions\",\n\
    \  \"units\": {\"time\": \"ms\", \"evals\": \"pair scores + lookahead terms\"},\n\
    \  \"results\": " !seed
    (Gridb_util.Provenance.json_fields ~jobs:!jobs);
  json_of_cells buf cells;
  Buffer.add_string buf "\n}\n";
  let oc = open_out !out in
  Buffer.output_buffer oc buf;
  close_out oc;
  Printf.printf "wrote %s (%d cells)\n" !out (List.length cells)

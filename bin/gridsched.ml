(* gridsched — command-line front end for the grid broadcast scheduling
   library.  Subcommands cover the whole pipeline: topology generation and
   inspection, schedule computation, simulation experiments and hit-rate
   analysis. *)

open Cmdliner

module Heuristics = Gridb_sched.Heuristics
module Instance = Gridb_sched.Instance
module Schedule = Gridb_sched.Schedule
module Topology = Gridb_topology

let heuristic_conv =
  let parse s =
    match Heuristics.by_name s with
    | Some h -> Ok h
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown heuristic %S (known: %s)" s
               (String.concat ", " Heuristics.names)))
  in
  Arg.conv (parse, fun ppf h -> Format.pp_print_string ppf h.Heuristics.name)

let engine_arg =
  let mode = Arg.enum [ ("incremental", `Incremental); ("naive", `Naive) ] in
  Arg.(
    value
    & opt mode `Incremental
    & info [ "engine" ] ~docv:"MODE"
        ~doc:
          "Selection engine: $(b,incremental) (per-receiver caches, the default) or \
           $(b,naive) (the paper's full A x B scan).  Both produce the identical \
           schedule; naive is kept as the reference oracle.")

let msg_arg =
  Arg.(value & opt int 1_000_000 & info [ "m"; "message" ] ~docv:"BYTES" ~doc:"Message size in bytes.")

let seed_arg =
  Arg.(value & opt int 2006 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let jobs_arg =
  Arg.(
    value
    & opt int (Gridb_util.Pool.default_jobs ())
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for batch work (default: the runtime's recommended \
           domain count).  Results are bit-identical for every $(docv); \
           $(b,--jobs 1) runs fully sequentially.")

let topology_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "t"; "topology" ] ~docv:"FILE"
        ~doc:"Topology file (see lib/topology/serialize.mli); defaults to the GRID5000 Table 3 grid.")

let load_grid = function
  | None -> Ok (Topology.Grid5000.grid ())
  | Some path -> (
      match Topology.Serialize.load path with
      | Ok g -> Ok g
      | Error e -> Error (Printf.sprintf "cannot load %s: %s" path e))

(* --- schedule: run one heuristic on a topology and print the schedule --- *)

let schedule_cmd =
  let run heuristic topology msg root gantt improve mode =
    match load_grid topology with
    | Error e ->
        prerr_endline e;
        1
    | Ok grid ->
        let inst = Instance.of_grid ~root ~msg grid in
        let schedule = Heuristics.run ~mode heuristic inst in
        let schedule =
          if improve then begin
            let refined = Gridb_sched.Refine.improve inst schedule in
            Format.printf "local search: %a -> %a@." Gridb_util.Units.pp_time
              (Schedule.makespan inst schedule)
              Gridb_util.Units.pp_time
              (Schedule.makespan inst refined);
            refined
          end
          else schedule
        in
        Format.printf "%a@." Schedule.pp schedule;
        Format.printf "makespan: %a@." Gridb_util.Units.pp_time
          (Schedule.makespan inst schedule);
        Format.printf "lower bound: %a (gap ratio %.3f)@." Gridb_util.Units.pp_time
          (Gridb_sched.Bounds.combined inst)
          (Gridb_sched.Bounds.gap_ratio inst (Schedule.makespan inst schedule));
        Format.printf "relay depth: %d, senders: %s@." (Schedule.depth schedule)
          (String.concat "," (List.map string_of_int (Schedule.senders schedule)));
        if gantt then print_string (Gridb_sched.Gantt.render inst schedule);
        0
  in
  let heuristic =
    Arg.(value & opt heuristic_conv Heuristics.ecef_la & info [ "H"; "heuristic" ] ~docv:"NAME")
  in
  let root = Arg.(value & opt int 0 & info [ "root" ] ~docv:"CLUSTER") in
  let gantt = Arg.(value & flag & info [ "gantt" ] ~doc:"Render a text Gantt chart.") in
  let improve =
    Arg.(value & flag & info [ "improve" ] ~doc:"Refine the schedule with local search.")
  in
  Cmd.v
    (Cmd.info "schedule" ~doc:"Compute and print one heuristic's broadcast schedule")
    Term.(const run $ heuristic $ topology_arg $ msg_arg $ root $ gantt $ improve $ engine_arg)

(* --- compare: all heuristics on one topology --- *)

let compare_cmd =
  let run topology msg root mode =
    match load_grid topology with
    | Error e ->
        prerr_endline e;
        1
    | Ok grid ->
        let inst = Instance.of_grid ~root ~msg grid in
        let table =
          Gridb_util.Text_table.create
            [ "heuristic"; "makespan (s)"; "depth"; "pair evals" ]
        in
        List.iter
          (fun h ->
            match h.Heuristics.policy with
            | Some p ->
                let s, stats = Gridb_sched.Engine.run_stats ~mode p inst in
                Gridb_util.Text_table.add_row table
                  [
                    h.Heuristics.name;
                    Printf.sprintf "%.4f" (Schedule.makespan inst s /. 1e6);
                    string_of_int (Schedule.depth s);
                    string_of_int stats.Gridb_sched.Engine.pair_evaluations;
                  ]
            | None ->
                let s = Heuristics.run h inst in
                Gridb_util.Text_table.add_row table
                  [
                    h.Heuristics.name;
                    Printf.sprintf "%.4f" (Schedule.makespan inst s /. 1e6);
                    string_of_int (Schedule.depth s);
                    "-";
                  ])
          Heuristics.all;
        Gridb_util.Text_table.print table;
        0
  in
  let root = Arg.(value & opt int 0 & info [ "root" ] ~docv:"CLUSTER") in
  Cmd.v
    (Cmd.info "compare" ~doc:"Compare all heuristics' makespans on one topology")
    Term.(const run $ topology_arg $ msg_arg $ root $ engine_arg)

(* --- topology: generate and save a random topology --- *)

let topology_cmd =
  let run kind n seed output dot =
    let rng = Gridb_util.Rng.create seed in
    let grid =
      match kind with
      | "random" ->
          Topology.Generators.uniform_random ~rng ~n Topology.Generators.default_random_spec
      | "multilevel" ->
          Topology.Generators.multilevel ~rng
            { Topology.Generators.default_multilevel_spec with sites = max 1 (n / 3) }
      | "grid5000" -> Topology.Grid5000.grid ()
      | other ->
          prerr_endline ("unknown kind " ^ other ^ " (random|multilevel|grid5000)");
          exit 1
    in
    (match output with
    | Some path ->
        Topology.Serialize.save path grid;
        Printf.printf "wrote %s\n" path
    | None -> print_string (Topology.Serialize.to_string grid));
    (match dot with
    | Some path ->
        Topology.Dot.save path grid;
        Printf.printf "wrote %s (render with: dot -Tsvg %s)\n" path path
    | None -> ());
    0
  in
  let kind = Arg.(value & pos 0 string "random" & info [] ~docv:"KIND") in
  let n = Arg.(value & opt int 10 & info [ "n"; "clusters" ] ~docv:"CLUSTERS") in
  let output = Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE") in
  let dot =
    Arg.(value & opt (some string) None & info [ "dot" ] ~docv:"FILE" ~doc:"Also write Graphviz DOT.")
  in
  Cmd.v
    (Cmd.info "topology" ~doc:"Generate a topology (random|multilevel|grid5000)")
    Term.(const run $ kind $ n $ seed_arg $ output $ dot)

(* --- hitrate: Figure 4 style analysis --- *)

let hitrate_cmd =
  let run n iterations seed overlapped =
    let rng = Gridb_util.Rng.create seed in
    let model = if overlapped then Schedule.Overlapped else Schedule.After_sends in
    let outcomes =
      Gridb_sched.Hit_rate.run ~model ~rng ~iterations ~n Instance.table2_ranges
        Heuristics.ecef_family
    in
    let table =
      Gridb_util.Text_table.create
        [ "heuristic"; "hits"; "rate"; "mean makespan (s)"; "+/- stderr" ]
    in
    List.iter
      (fun o ->
        Gridb_util.Text_table.add_row table
          [
            o.Gridb_sched.Hit_rate.name;
            string_of_int o.Gridb_sched.Hit_rate.hits;
            Printf.sprintf "%.1f%%" (100. *. Gridb_sched.Hit_rate.hit_fraction o);
            Printf.sprintf "%.4f" (o.Gridb_sched.Hit_rate.mean_makespan /. 1e6);
            Printf.sprintf "%.4f" (Gridb_sched.Hit_rate.stderr_makespan o /. 1e6);
          ])
      outcomes;
    Gridb_util.Text_table.print table;
    0
  in
  let n = Arg.(value & opt int 20 & info [ "n"; "clusters" ] ~docv:"CLUSTERS") in
  let iterations = Arg.(value & opt int 10_000 & info [ "i"; "iterations" ]) in
  let overlapped =
    Arg.(value & flag & info [ "overlapped" ] ~doc:"Use the overlapped completion model.")
  in
  Cmd.v
    (Cmd.info "hitrate" ~doc:"Hit-rate analysis of the ECEF family (paper Figure 4)")
    Term.(const run $ n $ iterations $ seed_arg $ overlapped)

(* --- figure: regenerate one paper figure --- *)

let figure_cmd =
  let run which iterations csv_dir =
    let config = Gridb_experiments.Config.(with_iterations iterations default) in
    let figures =
      match which with
      | "1" -> [ Gridb_experiments.Figures.fig1_small_grids config ]
      | "2" -> [ Gridb_experiments.Figures.fig2_large_grids config ]
      | "3" -> [ Gridb_experiments.Figures.fig3_ecef_zoom config ]
      | "4" ->
          let a, b = Gridb_experiments.Figures.fig4_hit_rate config in
          [ a; b ]
      | "5" -> [ Gridb_experiments.Figures.fig5_predicted config ]
      | "6" -> [ Gridb_experiments.Figures.fig6_measured config ]
      | other ->
          prerr_endline ("unknown figure " ^ other);
          exit 1
    in
    List.iter
      (fun figure ->
        Gridb_experiments.Report.print figure;
        match csv_dir with
        | Some dir ->
            let path = Gridb_experiments.Report.to_csv ~dir figure in
            Printf.printf "csv: %s\n" path
        | None -> ())
      figures;
    0
  in
  let which = Arg.(value & pos 0 string "1" & info [] ~docv:"FIGURE") in
  let iterations = Arg.(value & opt int 10_000 & info [ "i"; "iterations" ]) in
  let csv_dir = Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"DIR") in
  Cmd.v
    (Cmd.info "figure" ~doc:"Regenerate a paper figure (1-6)")
    Term.(const run $ which $ iterations $ csv_dir)

(* --- cluster: run Lowekamp detection on a topology's machine matrix --- *)

let cluster_cmd =
  let run topology matrix_file rho jitter seed save_grid =
    let matrix_result =
      match matrix_file with
      | Some path -> (
          match Gridb_clustering.Matrix_io.load path with
          | Error e -> Error (Printf.sprintf "cannot load %s: %s" path e)
          | Ok matrix -> (
              match Gridb_clustering.Matrix_io.validate matrix with
              | Error e -> Error (Printf.sprintf "%s: %s" path e)
              | Ok () -> Ok matrix))
      | None -> (
          match load_grid topology with
          | Error e -> Error e
          | Ok grid ->
              let machines = Topology.Machines.expand grid in
              let rng = Gridb_util.Rng.create seed in
              Ok (Topology.Machines.latency_matrix ~rng ~jitter_sigma:jitter machines))
    in
    match matrix_result with
    | Error e ->
        prerr_endline e;
        1
    | Ok matrix ->
        let partition = Gridb_clustering.Lowekamp.detect ~rho matrix in
        Format.printf "%a@." Gridb_clustering.Partition.pp partition;
        Format.printf "homogeneity (max/min): %.3f@."
          (Gridb_clustering.Lowekamp.partition_quality matrix partition);
        (match save_grid with
        | Some path ->
            let grid = Gridb_clustering.Abstraction.grid_of_matrix matrix partition in
            Topology.Serialize.save path grid;
            Printf.printf "wrote detected topology to %s\n" path
        | None -> ());
        0
  in
  let matrix_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "matrix" ] ~docv:"CSV"
          ~doc:"NxN machine latency matrix in microseconds (CSV); overrides --topology.")
  in
  let rho = Arg.(value & opt float 0.30 & info [ "rho" ] ~docv:"TOLERANCE") in
  let jitter = Arg.(value & opt float 0.03 & info [ "jitter" ] ~docv:"SIGMA") in
  let save_grid =
    Arg.(
      value
      & opt (some string) None
      & info [ "save-topology" ] ~docv:"FILE"
          ~doc:"Write the detected cluster-level topology to a file.")
  in
  Cmd.v
    (Cmd.info "cluster" ~doc:"Detect logical clusters from a machine latency matrix")
    Term.(const run $ topology_arg $ matrix_file $ rho $ jitter $ seed_arg $ save_grid)

(* --- optimal: certified optimum for small topologies --- *)

let optimal_cmd =
  let run topology msg root =
    match load_grid topology with
    | Error e ->
        prerr_endline e;
        1
    | Ok grid ->
        let inst = Instance.of_grid ~root ~msg grid in
        if inst.Instance.n > Gridb_opt.Exact.default_max_clusters then begin
          Printf.eprintf "exact search is capped at %d clusters (topology has %d)\n"
            Gridb_opt.Exact.default_max_clusters inst.Instance.n;
          1
        end
        else begin
          let cert = Gridb_opt.Exact.solve inst in
          Format.printf "%a@." Schedule.pp cert.Gridb_opt.Exact.schedule;
          let st = cert.Gridb_opt.Exact.stats in
          Format.printf
            "certified optimal makespan: %a  (incumbent %s; %d expanded, %d \
             bound-pruned, %d dominance-pruned)@."
            Gridb_util.Units.pp_time cert.Gridb_opt.Exact.makespan
            cert.Gridb_opt.Exact.incumbent st.Gridb_opt.Exact.expanded
            st.Gridb_opt.Exact.pruned_bound st.Gridb_opt.Exact.pruned_dominated;
          (match Gridb_opt.Traff.homogeneous inst with
          | None -> ()
          | Some params ->
              Format.printf
                "homogeneous instance: Traff closed form agrees at %a@."
                Gridb_util.Units.pp_time
                (Gridb_opt.Traff.makespan params));
          let table =
            Gridb_util.Text_table.create [ "heuristic"; "makespan (s)"; "vs optimal" ]
          in
          let opt = cert.Gridb_opt.Exact.makespan in
          List.iter
            (fun h ->
              let m = Heuristics.makespan h inst in
              Gridb_util.Text_table.add_row table
                [
                  h.Heuristics.name;
                  Printf.sprintf "%.4f" (m /. 1e6);
                  Printf.sprintf "%+.2f%%" (100. *. ((m /. opt) -. 1.));
                ])
            Heuristics.all;
          Gridb_util.Text_table.print table;
          0
        end
  in
  let root = Arg.(value & opt int 0 & info [ "root" ] ~docv:"CLUSTER") in
  Cmd.v
    (Cmd.info "optimal"
       ~doc:"Certified optimal schedule (branch-and-bound) and per-heuristic gaps")
    Term.(const run $ topology_arg $ msg_arg $ root)

(* --- measure: pLogP link measurement over the simulated wire --- *)

let measure_cmd =
  let run topology a b jitter seed =
    match load_grid topology with
    | Error e ->
        prerr_endline e;
        1
    | Ok grid ->
        let machines = Topology.Machines.expand grid in
        let noise =
          if jitter > 0. then Gridb_des.Noise.Lognormal jitter else Gridb_des.Noise.Exact
        in
        let truth = Topology.Machines.link_params machines a b in
        let recovered = Gridb_mpi.Benchmarks.measure_link ~noise ~seed machines ~a ~b in
        Format.printf "link ranks %d <-> %d@." a b;
        Format.printf "  ground truth: %a@." Gridb_plogp.Params.pp truth;
        Format.printf "  measured:     %a@." Gridb_plogp.Params.pp recovered;
        let table =
          Gridb_util.Text_table.create [ "size"; "true g (us)"; "measured g (us)"; "error" ]
        in
        List.iter
          (fun m ->
            let t = Gridb_plogp.Params.gap truth m in
            let r = Gridb_plogp.Params.gap recovered m in
            Gridb_util.Text_table.add_row table
              [
                Gridb_util.Units.bytes_to_string m;
                Printf.sprintf "%.2f" t;
                Printf.sprintf "%.2f" r;
                Printf.sprintf "%+.2f%%" (100. *. ((r /. t) -. 1.));
              ])
          [ 1_024; 65_536; 1_048_576; 4_194_304 ];
        Gridb_util.Text_table.print table;
        0
  in
  let a = Arg.(value & opt int 0 & info [ "src" ] ~docv:"RANK") in
  let b = Arg.(value & opt int 1 & info [ "dst" ] ~docv:"RANK") in
  let jitter = Arg.(value & opt float 0. & info [ "jitter" ] ~docv:"SIGMA") in
  Cmd.v
    (Cmd.info "measure" ~doc:"Measure a link's pLogP parameters on the simulated wire")
    Term.(const run $ topology_arg $ a $ b $ jitter $ seed_arg)

(* --- simulate: reliable broadcast under injected faults --- *)

let faults_conv =
  let parse s =
    match Gridb_des.Faults.of_string s with Ok spec -> Ok spec | Error e -> Error (`Msg e)
  in
  Arg.conv (parse, fun ppf spec -> Format.pp_print_string ppf (Gridb_des.Faults.to_string spec))

let transport_conv =
  let parse s =
    match Gridb_des.Exec.transport_of_string s with
    | Ok t -> Ok t
    | Error e -> Error (`Msg e)
  in
  Arg.conv
    (parse, fun ppf t -> Format.pp_print_string ppf (Gridb_des.Exec.transport_to_string t))

let dynamics_conv =
  let parse s =
    match Gridb_des.Dynamics.of_string s with Ok spec -> Ok spec | Error e -> Error (`Msg e)
  in
  Arg.conv
    (parse, fun ppf spec -> Format.pp_print_string ppf (Gridb_des.Dynamics.to_string spec))

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Stream the run's observability events to $(docv) as JSON Lines (one event per \
           line; read back with $(b,Gridb_obs.Sink.read)).")

let simulate_cmd =
  let run heuristic topology msg seed faults dynamics retries transport reps jitter jobs trace =
    match load_grid topology with
    | Error e ->
        prerr_endline e;
        1
    | Ok grid -> (
        match heuristic.Heuristics.policy with
        | None ->
            Printf.eprintf "heuristic %s has no policy descriptor; pick one of: %s\n"
              heuristic.Heuristics.name
              (String.concat ", " Heuristics.names);
            1
        | Some policy ->
            let noise =
              if jitter > 0. then Gridb_des.Noise.Lognormal jitter else Gridb_des.Noise.Exact
            in
            let repetitions = if reps > 0 then Some reps else None in
            let robustness obs =
              Gridb_experiments.Robustness.run ~policy ~msg ~retries ~seed ~noise ?obs
                ~transport ~dyn:dynamics ?repetitions ~jobs ~spec:faults grid
            in
            let metrics, traced =
              match trace with
              | Some path ->
                  Gridb_obs.Sink.with_jsonl path (fun obs ->
                      let m = robustness (Some obs) in
                      (m, Some (path, Gridb_obs.Sink.count obs)))
              | None -> (robustness None, None)
            in
            print_string (Gridb_experiments.Robustness.render metrics);
            (match traced with
            | Some (path, count) -> Printf.printf "trace: %d events -> %s\n" count path
            | None -> ());
            (match metrics.Gridb_experiments.Robustness.partition_drift with
            | Some d when d > 0. ->
                Printf.eprintf
                  "warning: live estimates re-cluster differently from planning time \
                   (partition drift %.3f); the schedule's cluster map is stale — consider \
                   replanning.\n"
                  d
            | _ -> ());
            0)
  in
  let heuristic =
    Arg.(value & opt heuristic_conv Heuristics.ecef_la & info [ "H"; "heuristic" ] ~docv:"NAME")
  in
  let faults =
    Arg.(
      value
      & opt faults_conv Gridb_des.Faults.none
      & info [ "faults" ] ~docv:"SPEC"
          ~doc:
            "Fault specification, comma-separated $(b,key=value) pairs: $(b,loss) \
             (per-transmission loss probability), $(b,cut) (permanent link-cut rate, 1/us), \
             $(b,crash) (crash-stop rate per rank, 1/us), $(b,degrade) (degradation episode \
             rate, 1/us), $(b,degrade-mean) (mean episode length, us), $(b,degrade-factor) \
             (slowdown multiplier).  Example: $(b,loss=0.05,crash=2e-8).  $(b,none) disables \
             fault injection.")
  in
  let dynamics =
    Arg.(
      value
      & opt dynamics_conv Gridb_des.Dynamics.none
      & info [ "dynamics" ] ~docv:"SPEC"
          ~doc:
            "Grid dynamics specification, comma-separated $(b,key=value) pairs: $(b,drift) \
             (background-load walk-step rate per link, 1/us), $(b,drift-sigma) (lognormal \
             step sigma), $(b,drift-max) (factor clamp), $(b,load-on)/$(b,load-off) (mean \
             loaded/unloaded phase durations, us; $(b,load-off=0) keeps links loaded), \
             $(b,leave) (permanent departure rate per rank, 1/us), $(b,join) (join arrival \
             rate, 1/us), $(b,join-max) (cap on joins), $(b,churn=r) (shorthand for \
             $(b,leave=r,join=r)), $(b,recluster) (online re-clustering period, us).  \
             Example: $(b,drift=2e-5,churn=5e-8,recluster=2e5).  $(b,none) disables \
             dynamics.")
  in
  let retries =
    Arg.(
      value
      & opt int 5
      & info [ "retries" ] ~docv:"N"
          ~doc:"Retransmission budget per plan edge before giving up.")
  in
  let transport =
    Arg.(
      value
      & opt transport_conv Gridb_des.Exec.Fixed
      & info [ "transport" ] ~docv:"KIND"
          ~doc:
            "Retransmission transport: $(b,fixed) (model-derived RTO), $(b,adaptive) \
             (live Jacobson/Karn RTO estimation with per-link circuit breakers) or \
             $(b,adaptive,reroute) (additionally re-parents orphaned children onto \
             already-delivered ranks, scored on live-estimated link quality).")
  in
  let reps =
    Arg.(
      value
      & opt int 0
      & info [ "reps" ] ~docv:"N"
          ~doc:
            "Also aggregate the reliable run over $(docv) independent fault draws \
             (mean/stddev makespan, delivered fraction); 0 disables the summary.")
  in
  let jitter =
    Arg.(
      value
      & opt float 0.
      & info [ "jitter" ] ~docv:"SIGMA" ~doc:"Lognormal noise sigma for the reliable run.")
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:
         "Reliable broadcast under fault injection and grid dynamics (delivery ratio, \
          inflation, repair)")
    Term.(
      const run $ heuristic $ topology_arg $ msg_arg $ seed_arg $ faults $ dynamics
      $ retries $ transport $ reps $ jitter $ jobs_arg $ trace_arg)

(* --- profile: per-phase rollup of one schedule-and-execute pipeline --- *)

let profile_cmd =
  let run heuristic topology msg root gantt trace =
    match load_grid topology with
    | Error e ->
        prerr_endline e;
        1
    | Ok grid -> (
        match heuristic.Heuristics.policy with
        | None ->
            Printf.eprintf "heuristic %s has no policy descriptor; pick one of: %s\n"
              heuristic.Heuristics.name
              (String.concat ", " Heuristics.names);
            1
        | Some policy ->
            (* One Memory sink observes the whole pipeline: a host-time span
               around scheduling, then the rank-level DES execution. *)
            let mem = Gridb_obs.Sink.memory () in
            let inst = Instance.of_grid ~root ~msg grid in
            let schedule =
              Gridb_obs.Span.wrap mem "schedule" (fun () ->
                  Gridb_sched.Engine.run ~obs:mem policy inst)
            in
            let machines = Topology.Machines.expand grid in
            let plan = Gridb_des.Plan.of_cluster_schedule machines schedule in
            ignore (Gridb_des.Exec.run ~msg ~obs:mem machines plan);
            let events = Gridb_obs.Sink.events mem in
            Printf.printf "profile: %s, %s, %s\n" heuristic.Heuristics.name
              (match topology with None -> "GRID5000" | Some path -> path)
              (Gridb_util.Units.bytes_to_string msg);
            print_string (Gridb_obs.Profile.render (Gridb_obs.Profile.of_events events));
            if gantt then print_string (Gridb_sched.Gantt.render_events events);
            (match trace with
            | Some path ->
                Gridb_obs.Sink.with_jsonl path (fun js ->
                    List.iter (Gridb_obs.Sink.emit js) events);
                Printf.printf "trace: %d events -> %s\n" (List.length events) path
            | None -> ());
            0)
  in
  let heuristic =
    Arg.(value & opt heuristic_conv Heuristics.ecef_la & info [ "H"; "heuristic" ] ~docv:"NAME")
  in
  let root = Arg.(value & opt int 0 & info [ "root" ] ~docv:"CLUSTER") in
  let gantt =
    Arg.(value & flag & info [ "gantt" ] ~doc:"Also render the executed-run event Gantt chart.")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Per-phase profile (schedule vs transmit vs intra-cluster) of one broadcast")
    Term.(const run $ heuristic $ topology_arg $ msg_arg $ root $ gantt $ trace_arg)

(* --- check: conformance fuzzing of the whole pipeline --- *)

let check_cmd =
  let run seed count out replay list jobs family =
    let property =
      match family with
      | `Pipeline -> Gridb_check.Run.check
      | `Service -> Gridb_check.Run.check_service
      | `Chaos -> Gridb_check.Run.check_chaos
      | `Opt -> Gridb_check.Run.check_opt
      | `All ->
          fun sc ->
            Result.bind (Gridb_check.Run.check sc) (fun () ->
                Result.bind (Gridb_check.Run.check_service sc) (fun () ->
                    Result.bind (Gridb_check.Run.check_chaos sc) (fun () ->
                        Gridb_check.Run.check_opt sc)))
    in
    if list then begin
      print_string (Gridb_check.Report.catalogue ());
      0
    end
    else
      match replay with
      | Some path -> (
          match Gridb_check.Fuzz.replay ~property path with
          | Error e ->
              prerr_endline e;
              1
          | Ok outcome ->
              print_endline (Gridb_check.Report.render_replay path outcome);
              (match outcome with Gridb_check.Fuzz.Confirmed _ -> 0 | _ -> 1))
      | None -> (
          let on_progress i =
            if i mod 100 = 0 then Printf.eprintf "check: %d/%d scenarios...\n%!" i count
          in
          match Gridb_check.Fuzz.run ~property ~on_progress ~jobs ~seed ~count () with
          | Ok count ->
              print_endline (Gridb_check.Report.render_success ~seed ~count);
              0
          | Error failure ->
              Gridb_check.Fuzz.write_reproducer out failure;
              print_endline (Gridb_check.Report.render_failure ~out failure);
              1)
  in
  let count =
    Arg.(
      value
      & opt int 100
      & info [ "count" ] ~docv:"N" ~doc:"Number of generated scenarios to check.")
  in
  let out =
    Arg.(
      value
      & opt string "counterexample.json"
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Where to write the shrunk counterexample reproducer on failure.")
  in
  let replay =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"FILE"
          ~doc:
            "Re-execute a reproducer file instead of fuzzing; exits 0 iff the \
             recorded violation is confirmed.")
  in
  let list =
    Arg.(value & flag & info [ "list" ] ~doc:"Print the invariant catalogue and exit.")
  in
  let family =
    Arg.(
      value
      & opt
          (enum
             [
               ("pipeline", `Pipeline);
               ("service", `Service);
               ("chaos", `Chaos);
               ("opt", `Opt);
               ("all", `All);
             ])
          `Pipeline
      & info [ "family" ] ~docv:"FAMILY"
          ~doc:
            "Which property family each scenario runs through: the single-broadcast \
             $(b,pipeline) (default), the multi-session $(b,service) checks, the \
             resilience $(b,chaos) checks (faulty retrying service with deadlines, \
             priorities and shedding), the $(b,opt) optimality oracles (exact \
             branch-and-bound vs every heuristic, Traff's construction on \
             homogeneous instances), or $(b,all) (pipeline, service, chaos, then \
             opt).")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Fuzz the scheduling/DES pipeline against its invariant and metamorphic catalogue")
    Term.(const run $ seed_arg $ count $ out $ replay $ list $ jobs_arg $ family)

(* --- serve: broadcast-as-a-service over a seeded open-loop workload --- *)

let serve_cmd =
  let run topology rate duration seed jobs transport max_concurrent max_backlog smoke
      profile trace mix faults dynamics retry_budget retry_backoff shed_watermark
      shed_open_frac =
    match load_grid topology with
    | Error e ->
        prerr_endline e;
        1
    | Ok grid -> (
        let machines = Topology.Machines.expand grid in
        let mix =
          match mix with
          | None -> Ok None
          | Some s -> (
              match Gridb_service.Workload.mix_of_string machines s with
              | Ok m -> Ok (Some m)
              | Error e -> Error e)
        in
        match mix with
        | Error e ->
            prerr_endline e;
            1
        | Ok mix ->
        let requests =
          Gridb_service.Workload.generate ?mix ~seed ~rate:(rate /. 1e6)
            ~duration machines
        in
        let shed =
          match (shed_watermark, shed_open_frac) with
          | None, None -> Gridb_service.Admission.no_shed
          | w, f ->
              Gridb_service.Admission.shed ?watermark_us:w ?max_open_frac:f ()
        in
        let admission =
          Gridb_service.Admission.create ~max_concurrent
            ?max_backlog_us:max_backlog ~shed ()
        in
        let retry =
          { Gridb_service.Server.budget = retry_budget; backoff_us = retry_backoff }
        in
        let mem =
          if profile || trace <> None then Gridb_obs.Sink.memory ()
          else Gridb_obs.Sink.null
        in
        let report =
          Gridb_service.Server.run ~jobs ~transport ~admission ~obs:mem
            ~seed:(seed + 1) ?faults ?dynamics ~retry machines requests
        in
        List.iter print_endline (Gridb_service.Server.smoke_lines report);
        if not smoke then
          Printf.printf
            "throughput %.0f plans/s, plan latency p50 %.1f us p99 %.1f us (wall %.3f s)\n"
            report.Gridb_service.Server.plans_per_sec
            report.Gridb_service.Server.plan_p50_us
            report.Gridb_service.Server.plan_p99_us
            report.Gridb_service.Server.plan_wall_s;
        let events = Gridb_obs.Sink.events mem in
        if profile then
          (* The per-request rows come from the sid tags the sessions put
             on every event they publish. *)
          print_string (Gridb_obs.Profile.render (Gridb_obs.Profile.of_events events));
        (match trace with
        | Some path ->
            Gridb_obs.Sink.with_jsonl path (fun js ->
                List.iter (Gridb_obs.Sink.emit js) events);
            Printf.printf "trace: %d events -> %s\n" (List.length events) path
        | None -> ());
        0)
  in
  let rate =
    Arg.(
      value
      & opt float 50.
      & info [ "rate" ] ~docv:"REQ_S"
          ~doc:"Open-loop request arrival rate, requests per simulated second.")
  in
  let duration =
    Arg.(
      value
      & opt float 2e6
      & info [ "duration" ] ~docv:"US"
          ~doc:"Length of the arrival window, simulated microseconds.")
  in
  let max_concurrent =
    Arg.(
      value
      & opt int 8
      & info [ "max-concurrent" ] ~docv:"N"
          ~doc:"Admission cap on predicted-concurrent sessions.")
  in
  let max_backlog =
    Arg.(
      value
      & opt (some float) None
      & info [ "max-backlog" ] ~docv:"US"
          ~doc:"Admission cap on predicted backlog (default: unbounded).")
  in
  let transport =
    Arg.(
      value
      & opt transport_conv Gridb_des.Exec.Fixed
      & info [ "transport" ] ~docv:"KIND"
          ~doc:"Session transport: $(b,fixed), $(b,adaptive) or $(b,adaptive,reroute).")
  in
  let smoke =
    Arg.(
      value
      & flag
      & info [ "smoke" ]
          ~doc:
            "Deterministic output only (no host-clock throughput/latency lines); \
             byte-identical for every $(b,--jobs), which CI compares.")
  in
  let profile =
    Arg.(
      value
      & flag
      & info [ "profile" ]
          ~doc:
            "Collect the multi-session event stream and print the per-phase rollup, \
             including the per-request session rows (sid attribution).")
  in
  let mix =
    Arg.(
      value
      & opt (some string) None
      & info [ "mix" ] ~docv:"SPEC"
          ~doc:
            "Request mix as comma-separated key=value pairs with '|'-separated list \
             elements, e.g. \
             $(b,roots=0|1,msgs=65536,policies=ECEF,deadlines=500000|inf,high=0.3); \
             omitted keys keep the default mix.")
  in
  let faults =
    Arg.(
      value
      & opt (some faults_conv) None
      & info [ "faults" ] ~docv:"SPEC"
          ~doc:
            "Per-session fault spec (see $(b,simulate)); each session draws its own \
             seeded fault model, retries included.")
  in
  let dynamics =
    Arg.(
      value
      & opt (some dynamics_conv) None
      & info [ "dynamics" ] ~docv:"SPEC"
          ~doc:"Per-session dynamics spec (drift / churn / recluster).")
  in
  let retry_budget =
    Arg.(
      value
      & opt int 0
      & info [ "retry-budget" ] ~docv:"N"
          ~doc:
            "Requeue a partially-delivered request up to $(docv) times (0 disables \
             retries).")
  in
  let retry_backoff =
    Arg.(
      value
      & opt float 1e4
      & info [ "retry-backoff" ] ~docv:"US"
          ~doc:"Base requeue backoff; the k-th retry waits $(docv)*2^(k-1) us.")
  in
  let shed_watermark =
    Arg.(
      value
      & opt (some float) None
      & info [ "shed-watermark" ] ~docv:"US"
          ~doc:
            "Shed low-priority requests when the predicted backlog exceeds $(docv) \
             (default: never).")
  in
  let shed_open_frac =
    Arg.(
      value
      & opt (some float) None
      & info [ "shed-open-frac" ] ~docv:"FRAC"
          ~doc:
            "Shed low-priority requests when the open-circuit fraction of finished \
             sessions exceeds $(docv) (default: never).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve a seeded open-loop broadcast workload: memoized planning, admission \
          control, concurrent sessions on one shared wire, optional chaos (faults, \
          dynamics, retries, deadlines, load shedding)")
    Term.(
      const run $ topology_arg $ rate $ duration $ seed_arg $ jobs_arg $ transport
      $ max_concurrent $ max_backlog $ smoke $ profile $ trace_arg $ mix $ faults
      $ dynamics $ retry_budget $ retry_backoff $ shed_watermark $ shed_open_frac)

let main_cmd =
  let doc = "broadcast scheduling heuristics for grid environments (PMEO-PDS'06 reproduction)" in
  Cmd.group
    (Cmd.info "gridsched" ~version:"1.0.0" ~doc)
    [
      schedule_cmd;
      compare_cmd;
      topology_cmd;
      hitrate_cmd;
      figure_cmd;
      cluster_cmd;
      optimal_cmd;
      measure_cmd;
      simulate_cmd;
      profile_cmd;
      check_cmd;
      serve_cmd;
    ]

let () = exit (Cmd.eval' main_cmd)

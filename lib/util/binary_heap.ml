(* A keyed heap is a Score_heap of (key, insertion seq) over a payload
   array indexed by seq: the sift core lives in Score_heap alone, and the
   documented smaller-id tie-break turns into FIFO order for equal keys. *)

type 'a t = {
  key : 'a -> float;
  heap : Score_heap.t;
  capacity : int;  (* requested initial allocation, honoured lazily *)
  mutable data : 'a array;  (* seq -> payload; slots [0, next) written *)
  mutable next : int;  (* next insertion sequence number *)
}

let create ?(capacity = 16) ~key () =
  if capacity < 1 then invalid_arg "Binary_heap.create: capacity < 1";
  { key; heap = Score_heap.create ~capacity ~order:Score_heap.Min (); capacity; data = [||]; next = 0 }

let length t = Score_heap.length t.heap
let is_empty t = Score_heap.is_empty t.heap

let grow t x =
  (* The payload array is allocated lazily because an array of unknown
     element type cannot be pre-filled; [x] seeds the new slots. *)
  let cap = Array.length t.data in
  if t.next = cap then begin
    let ncap = if cap = 0 then t.capacity else 2 * cap in
    let ndata = Array.make ncap x in
    Array.blit t.data 0 ndata 0 t.next;
    t.data <- ndata
  end

let add t x =
  grow t x;
  t.data.(t.next) <- x;
  Score_heap.push t.heap (t.key x) t.next;
  t.next <- t.next + 1

let peek t =
  if Score_heap.is_empty t.heap then None else Some t.data.(Score_heap.top_id t.heap)

let pop t =
  if Score_heap.is_empty t.heap then None
  else begin
    let x = t.data.(Score_heap.top_id t.heap) in
    Score_heap.drop_top t.heap;
    (* No live sequence numbers remain once the heap empties, so the slot
       counter can restart — total memory is bounded by the peak number of
       pushes between two empty states, not by the push count overall. *)
    if Score_heap.is_empty t.heap then t.next <- 0;
    Some x
  end

let pop_exn t =
  match pop t with
  | Some x -> x
  | None -> invalid_arg "Binary_heap.pop_exn: empty heap"

let clear t =
  Score_heap.clear t.heap;
  t.data <- [||];
  t.next <- 0

let of_array ~key a =
  let t = create ~capacity:(max 1 (Array.length a)) ~key () in
  Array.iter (add t) a;
  t

let to_sorted_list t =
  let rec drain acc =
    match pop t with None -> List.rev acc | Some x -> drain (x :: acc)
  in
  drain []

let check_invariant t = Score_heap.check_invariant t.heap

(** Communication levels (Table 1 of the paper, after Karonis/MPICH-G2).

    Links are classified by decreasing latency: level 0 (WAN-TCP) > level 1
    (LAN-TCP) > level 2 (localhost TCP) > level 3+ (shared memory / vendor
    MPI such as Myrinet).  The multilevel broadcast extension uses this
    classification to overlap communication between levels. *)

type t = Wan_tcp | Lan_tcp | Localhost_tcp | Shared_memory

val level_number : t -> int
(** Wan_tcp -> 0, Lan_tcp -> 1, Localhost_tcp -> 2, Shared_memory -> 3. *)

val of_latency : float -> t
(** Classify a link from its latency in microseconds.  Thresholds (derived
    from the Table 3 measurements): >= 1000 us WAN, >= 100 us LAN,
    >= 10 us localhost, below that shared memory. *)

val compare_slower_first : t -> t -> int
(** Orders levels as in Table 1: level 0 (slowest) first. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val all : t list
(** Slowest first. *)

val table1 : (t * string) list
(** The rendered content of Table 1: level and example technology. *)

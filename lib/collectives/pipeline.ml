module Params = Gridb_plogp.Params

let chain_time ~params ~size ~msg ~segments =
  if segments < 1 then invalid_arg "Pipeline.chain_time: segments < 1";
  if size <= 1 then 0.
  else begin
    let segments = min segments (max 1 msg) in
    let seg_size = (msg + segments - 1) / segments in
    let g = Params.gap params seg_size and l = Params.latency params in
    (float_of_int (segments + size - 2) *. g) +. (float_of_int (size - 1) *. l)
  end

let default_candidates = [ 1; 2; 4; 8; 16; 32; 64; 128; 256 ]

let best_segments ?(candidates = default_candidates) ~params ~size ~msg () =
  let eval s = (s, chain_time ~params ~size ~msg ~segments:s) in
  match List.map eval candidates with
  | [] -> invalid_arg "Pipeline.best_segments: no candidates"
  | first :: rest ->
      List.fold_left
        (fun (bs, bt) (s, t) -> if t < bt then (s, t) else (bs, bt))
        first rest

let binomial_vs_pipeline ~params ~size ~msg =
  let binomial = Cost.broadcast_time ~params ~size ~msg () in
  let segments, pipeline = best_segments ~params ~size ~msg () in
  if binomial <= pipeline then `Binomial binomial else `Pipeline (segments, pipeline)

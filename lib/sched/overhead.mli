(** Model of the scheduling cost a heuristic adds to [MPI_Bcast].

    Section 7 observes that "the algorithm complexity is a factor that must
    be considered when implementing more elaborate techniques like
    ECEF-LAT": before the first byte moves, the root runs the heuristic.
    The cost is modelled as (number of candidate evaluations) x (cost per
    evaluation); the counts below follow directly from the selection loops:

    - FlatTree: n selections, O(n);
    - FEF, ECEF, BottomUp: sum over rounds of |A| * |B|, about n^3 / 6;
    - ECEF-LA family: adds the O(|B|) lookahead per receiver per round,
      about n^3 / 3 evaluations in total. *)

val evaluations : n:int -> string -> float
(** Abstract evaluation count for a heuristic given by name
    ({!Gridb_sched.Heuristics} names, matched case-insensitively; unknown
    names get the ECEF count). *)

val default_per_evaluation_us : float
(** 0.5 us per candidate evaluation — a conservative figure for the 2006-era
    hosts the paper used. *)

val cost_us : ?per_evaluation_us:float -> n:int -> string -> float
(** Scheduling delay (us) to charge before the root's first transmission. *)

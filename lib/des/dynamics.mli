(** Seeded, reproducible grid dynamics: background-load drift and churn.

    {!Faults} models things that {e break}; this module models things that
    merely {e change}.  A {!spec} describes three independent processes:

    - {b parameter drift} — per directed link, background load arrives and
      departs as alternating ON/OFF phases (exponential durations of means
      [load_on_mean] / [load_off_mean]); while a phase is ON, the link's
      effective gap and latency are multiplied by a bounded random-walk
      factor that takes lognormal steps at Poisson times of rate
      [drift_rate] and is clamped to [[1/drift_max, drift_max]].  Off
      phases snap the factor back to exactly [1.] (the walk keeps its value
      for the next ON phase);
    - {b leaves} — rank [i] departs forever at a time drawn from
      [Exp(leave_rate)]: a crash-like permanent halt, indistinguishable
      from {!Faults} crashes to the executor;
    - {b joins} — new ranks appear as a Poisson process of rate
      [join_rate] (at most [join_max] of them), each attaching to a
      uniformly drawn cluster with fresh, undrifted links.  Joins receive
      rank ids [n], [n+1], … above the planning-time population.

    [recluster_every] is carried in the same spec for the consumers'
    convenience (the online re-clustering loop of
    {!Gridb_experiments.Dynamics} and [gridsched simulate]); the processes
    above ignore it.

    Like {!Faults}, all randomness is pre-seeded per link / per rank at
    {!create} time from one SplitMix64 master stream and drift events are
    materialised lazily in time order, so draws are reproducible at a fixed
    seed and independent of the order in which the executor queries
    different links — which is what keeps dynamic runs bit-stable at any
    [--jobs] count. *)

type spec = {
  drift_rate : float;  (** walk-step arrival rate per directed link, 1/us *)
  drift_sigma : float;  (** lognormal sigma of one walk step, > 0 *)
  drift_max : float;  (** factor clamp: walk stays in [1/drift_max, drift_max] *)
  load_on_mean : float;  (** mean ON (loaded) phase duration, us *)
  load_off_mean : float;  (** mean OFF phase duration, us; [0.] = always loaded *)
  leave_rate : float;  (** permanent departure rate per rank, 1/us *)
  join_rate : float;  (** global join arrival rate, 1/us *)
  join_max : int;  (** cap on materialised joins *)
  recluster_every : float;  (** re-clustering period for consumers, us; [0.] = off *)
}

val none : spec
(** All processes disabled: zero rates, [recluster_every = 0.]. *)

val v :
  ?drift_rate:float ->
  ?drift_sigma:float ->
  ?drift_max:float ->
  ?load_on_mean:float ->
  ?load_off_mean:float ->
  ?leave_rate:float ->
  ?join_rate:float ->
  ?join_max:int ->
  ?recluster_every:float ->
  unit ->
  spec
(** Build a validated spec; omitted fields default to {!none}'s values
    (sigma 0.25, clamp 4., ON/OFF means 2e5 us, [join_max] 4).
    @raise Invalid_argument on negative rates, non-positive [drift_sigma]
    or [load_on_mean], [drift_max < 1.], negative [load_off_mean],
    [join_max < 0] or negative [recluster_every]. *)

val is_none : spec -> bool
(** True iff nothing ever changes: zero drift, leave and join rates and no
    re-clustering period. *)

val of_string : string -> (spec, string) result
(** Parse a CLI spec: comma-separated [key=value] pairs with keys [drift]
    (walk-step rate), [drift-sigma], [drift-max], [load-on], [load-off],
    [leave], [join], [join-max], [recluster], plus the shorthand [churn=r]
    that sets [leave] and [join] to [r] at once.  [""] and ["none"] parse
    to {!none}.  Example: ["drift=2e-5,churn=5e-8,recluster=2e5"].
    Errors name the offending key as typed — same contract as
    {!Faults.of_string}. *)

val to_string : spec -> string
(** Inverse of {!of_string} up to field order; ["none"] for {!none}.  The
    [churn] shorthand is never emitted, so print∘parse∘print is a
    fixpoint. *)

type t
(** An instantiated dynamics model over [n] planning-time ranks (plus any
    joins). *)

type join = {
  rank : int;  (** the new rank's id, in [n .. total - 1] *)
  cluster : int;  (** cluster it attaches to *)
  at : float;  (** arrival time, us *)
}

val create : ?seed:int -> ?t0:float -> n:int -> clusters:int -> spec -> t
(** Pre-draws leave times and join arrivals and seeds the per-link drift
    streams (default seed 0).  [clusters] is the number of clusters joins
    may attach to.  With {!is_none} specs no randomness is consumed at all.

    [t0] (default [0.]) is the model's time origin: every drawn time —
    leave times, join arrivals, the drift-phase timeline — is an offset
    from it.  A session launched mid-simulation (e.g. a broadcast-service
    request, or a retry) passes its own start time so the model describes
    dynamics {e from that session's start}, not from the simulation's
    epoch; the drawn offsets themselves are [t0]-independent, so shifting
    the origin never changes the random stream.
    @raise Invalid_argument if [n < 1], [clusters < 1] or [t0] is not
    finite. *)

val spec : t -> spec
val size : t -> int
(** Planning-time population [n] (excludes joins). *)

val total : t -> int
(** [n] plus materialised joins — the executor's array size. *)

val joins : t -> join array
(** Join events in arrival order; rank ids are [n], [n+1], … *)

val leave_time : t -> int -> float
(** When rank [i] departs forever; [infinity] if never (always for join
    ranks — a joining rank does not leave within the modelled horizon).
    @raise Invalid_argument for ranks outside [0 .. total - 1]. *)

val left : t -> int -> at:float -> bool

val factor : t -> src:int -> dst:int -> at:float -> float
(** Multiplicative gap/latency drift on the directed link at time [at]:
    the clamped walk value while the link's load phase is ON, exactly [1.]
    while OFF, on self-links, on links touching a join rank (fresh links
    are undrifted), and always when [drift_rate = 0.]. *)

type timer = { mutable live : bool }

type event = { time : float; seq : int; action : t -> unit; timer : timer option }

and t = {
  queue : event Gridb_util.Binary_heap.t;
  mutable clock : float;
  mutable next_seq : int;
  mutable processed : int;
  mutable cancelled_pending : int;
}

let compare_events a b =
  let c = Float.compare a.time b.time in
  if c <> 0 then c else compare a.seq b.seq

let create () =
  {
    queue = Gridb_util.Binary_heap.create ~cmp:compare_events ();
    clock = 0.;
    next_seq = 0;
    processed = 0;
    cancelled_pending = 0;
  }

let now t = t.clock

let enqueue t ~time action timer =
  if time < t.clock then invalid_arg "Engine.schedule: time in the past";
  Gridb_util.Binary_heap.add t.queue { time; seq = t.next_seq; action; timer };
  t.next_seq <- t.next_seq + 1

let schedule t ~time action = enqueue t ~time action None

let schedule_after t ~delay action =
  if delay < 0. then invalid_arg "Engine.schedule_after: negative delay";
  schedule t ~time:(t.clock +. delay) action

let schedule_timer t ~time action =
  let timer = { live = true } in
  enqueue t ~time action (Some timer);
  timer

let cancel t timer =
  if timer.live then begin
    timer.live <- false;
    t.cancelled_pending <- t.cancelled_pending + 1
  end

let timer_live timer = timer.live

let event_cancelled e = match e.timer with Some tm -> not tm.live | None -> false

(* Drop cancelled events sitting at the head of the queue: they must be
   invisible to [step]/[run_until] (neither executed, nor allowed to drag
   the clock or the horizon check). *)
let rec drop_cancelled t =
  match Gridb_util.Binary_heap.peek t.queue with
  | Some e when event_cancelled e ->
      ignore (Gridb_util.Binary_heap.pop t.queue);
      t.cancelled_pending <- t.cancelled_pending - 1;
      drop_cancelled t
  | _ -> ()

let step t =
  drop_cancelled t;
  match Gridb_util.Binary_heap.pop t.queue with
  | None -> false
  | Some e ->
      t.clock <- e.time;
      t.processed <- t.processed + 1;
      (match e.timer with Some tm -> tm.live <- false | None -> ());
      e.action t;
      true

let run t = while step t do () done

let run_until t horizon =
  let continue = ref true in
  while !continue do
    drop_cancelled t;
    match Gridb_util.Binary_heap.peek t.queue with
    | Some e when e.time <= horizon -> ignore (step t)
    | _ -> continue := false
  done;
  if t.clock < horizon then t.clock <- horizon

let pending t =
  drop_cancelled t;
  Gridb_util.Binary_heap.length t.queue - t.cancelled_pending

let processed t = t.processed

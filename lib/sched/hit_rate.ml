type outcome = {
  name : string;
  hits : int;
  iterations : int;
  mean_makespan : float;
  stddev_makespan : float;
}

let stderr_makespan o =
  if o.iterations < 1 then 0.
  else o.stddev_makespan /. sqrt (float_of_int o.iterations)

let hit_fraction o =
  if o.iterations = 0 then 0. else float_of_int o.hits /. float_of_int o.iterations

let score ?(epsilon = 1e-9) ?model instances heuristics =
  if heuristics = [] then invalid_arg "Hit_rate: no heuristics";
  let k = List.length heuristics in
  let hits = Array.make k 0 in
  let stats = Array.init k (fun _ -> Gridb_util.Stats.Online.create ()) in
  let count = ref 0 in
  List.iter
    (fun inst ->
      incr count;
      let makespans =
        List.map (fun h -> Heuristics.makespan ?model h inst) heuristics |> Array.of_list
      in
      let global_min = Array.fold_left Float.min infinity makespans in
      Array.iteri
        (fun i ms ->
          Gridb_util.Stats.Online.add stats.(i) ms;
          if ms <= global_min *. (1. +. epsilon) then hits.(i) <- hits.(i) + 1)
        makespans)
    instances;
  List.mapi
    (fun i (h : Heuristics.t) ->
      {
        name = h.Heuristics.name;
        hits = hits.(i);
        iterations = !count;
        mean_makespan = Gridb_util.Stats.Online.mean stats.(i);
        stddev_makespan = Gridb_util.Stats.Online.stddev stats.(i);
      })
    heuristics

let run ?epsilon ?model ~rng ~iterations ~n ranges heuristics =
  if iterations < 1 then invalid_arg "Hit_rate.run: iterations < 1";
  let instances =
    List.init iterations (fun _ -> Instance.random ~rng ~n ranges)
  in
  score ?epsilon ?model instances heuristics

let run_instances ?epsilon ?model instances heuristics =
  score ?epsilon ?model instances heuristics

module Rng = Gridb_util.Rng

type property = Scenario.t -> Invariant.outcome

type failure = {
  original : Scenario.t;
  scenario : Scenario.t;
  violation : Invariant.violation;
  shrink_steps : int;
  tested : int;
}

let shrink ?(budget = 100) (property : property) sc violation =
  let rec fixpoint sc violation steps =
    if steps >= budget then (sc, violation, steps)
    else
      let rec first = function
        | [] -> None
        | candidate :: rest -> (
            match property candidate with
            | Ok () -> first rest
            | Error v -> Some (candidate, v))
      in
      match first (Scenario.shrink_candidates sc) with
      | None -> (sc, violation, steps)
      | Some (candidate, v) -> fixpoint candidate v (steps + 1)
  in
  fixpoint sc violation 0

let run ?(property = Run.check) ?(on_progress = fun _ -> ()) ?(jobs = 1) ~seed
    ~count () =
  if count < 0 then invalid_arg "Fuzz.run: count must be >= 0";
  let rng = Rng.create seed in
  if jobs <= 1 then
    (* Sequential path: generate lazily, stop at the first failure. *)
    let rec go i =
      if i > count then Ok count
      else begin
        on_progress i;
        let sc = Scenario.generate rng in
        match property sc with
        | Ok () -> go (i + 1)
        | Error violation ->
            let scenario, violation, shrink_steps =
              shrink property sc violation
            in
            Error { original = sc; scenario; violation; shrink_steps; tested = i - 1 }
      end
    in
    go 1
  else begin
    (* Parallel path: scenario generation consumes the single sequential
       [rng], so draw the whole sequence up front (identical to the
       scenarios the lazy loop would have seen), then fan the checks out.
       [Pool.find_first] returns exactly the sequential scan's first
       failure, so the result — and the reproducer shrunk from it — is
       independent of [jobs].  Shrinking stays sequential: each candidate
       depends on whether the previous one failed. *)
    let scenarios =
      Array.init count (fun i ->
          on_progress (i + 1);
          Scenario.generate rng)
    in
    match
      Gridb_util.Pool.find_first ~jobs
        (fun _ sc ->
          match property sc with Ok () -> None | Error v -> Some v)
        scenarios
    with
    | None -> Ok count
    | Some (i, violation) ->
        let sc = scenarios.(i) in
        let scenario, violation, shrink_steps = shrink property sc violation in
        Error { original = sc; scenario; violation; shrink_steps; tested = i }
  end

let write_reproducer path failure =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let line =
        Scenario.to_json
          ~extra:
            [
              ("violation", failure.violation.Invariant.invariant);
              ("detail", failure.violation.Invariant.detail);
              ("original_seed", string_of_int failure.original.Scenario.seed);
            ]
          failure.scenario
      in
      output_string oc line;
      output_char oc '\n')

type replay_outcome =
  | Confirmed of Invariant.violation
  | Different of { recorded : string; got : Invariant.violation }
  | Fixed

let first_line path =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let rec next () =
            match input_line ic with
            | exception End_of_file -> Error (path ^ ": empty reproducer file")
            | line when String.trim line = "" -> next ()
            | line -> Ok line
          in
          next ())

let replay ?(property = Run.check) path =
  match first_line path with
  | Error e -> Error e
  | Ok line -> (
      match Scenario.of_json line with
      | Error e -> Error (Printf.sprintf "%s: %s" path e)
      | Ok sc -> (
          let recorded = Scenario.string_field ~key:"violation" line in
          match property sc with
          | Ok () -> Ok Fixed
          | Error got -> (
              match recorded with
              | None -> Ok (Confirmed got)
              | Some r when r = got.Invariant.invariant -> Ok (Confirmed got)
              | Some r -> Ok (Different { recorded = r; got }))))

module Rng = Gridb_util.Rng

type spec = {
  loss : float;
  cut_rate : float;
  degrade_rate : float;
  degrade_mean : float;
  degrade_factor : float;
  crash_rate : float;
}

let none =
  {
    loss = 0.;
    cut_rate = 0.;
    degrade_rate = 0.;
    degrade_mean = 1e6;
    degrade_factor = 3.;
    crash_rate = 0.;
  }

let v ?(loss = 0.) ?(cut_rate = 0.) ?(degrade_rate = 0.) ?(degrade_mean = 1e6)
    ?(degrade_factor = 3.) ?(crash_rate = 0.) () =
  if not (loss >= 0. && loss < 1.) then invalid_arg "Faults.v: loss outside [0, 1)";
  if cut_rate < 0. then invalid_arg "Faults.v: negative cut_rate";
  if degrade_rate < 0. then invalid_arg "Faults.v: negative degrade_rate";
  if degrade_mean <= 0. then invalid_arg "Faults.v: degrade_mean must be positive";
  if degrade_factor < 1. then invalid_arg "Faults.v: degrade_factor < 1";
  if crash_rate < 0. then invalid_arg "Faults.v: negative crash_rate";
  { loss; cut_rate; degrade_rate; degrade_mean; degrade_factor; crash_rate }

let is_none s =
  s.loss = 0. && s.cut_rate = 0. && s.degrade_rate = 0. && s.crash_rate = 0.

let of_string str =
  let str = String.trim str in
  if str = "" || String.lowercase_ascii str = "none" then Ok none
  else
    let parse_pair acc pair =
      match acc with
      | Error _ as e -> e
      | Ok s -> (
          match String.index_opt pair '=' with
          | None -> Error (Printf.sprintf "malformed %S (want key=value)" pair)
          | Some i -> (
              let key = String.trim (String.sub pair 0 i) in
              let value = String.trim (String.sub pair (i + 1) (String.length pair - i - 1)) in
              match float_of_string_opt value with
              | None -> Error (Printf.sprintf "%s: not a number (%S)" key value)
              | Some f -> (
                  (* Range checks live here, per key, so the error names the
                     CLI key the user typed — not the spec record field that
                     [v] would complain about. *)
                  let checked ok msg update =
                    if ok then Ok (update s)
                    else Error (Printf.sprintf "%s: %s (got %g)" key msg f)
                  in
                  match key with
                  | "loss" ->
                      checked (f >= 0. && f < 1.) "outside [0, 1)"
                        (fun s -> { s with loss = f })
                  | "cut" ->
                      checked (f >= 0.) "negative rate" (fun s -> { s with cut_rate = f })
                  | "crash" ->
                      checked (f >= 0.) "negative rate"
                        (fun s -> { s with crash_rate = f })
                  | "degrade" ->
                      checked (f >= 0.) "negative rate"
                        (fun s -> { s with degrade_rate = f })
                  | "degrade-mean" ->
                      checked (f > 0.) "must be positive"
                        (fun s -> { s with degrade_mean = f })
                  | "degrade-factor" ->
                      checked (f >= 1.) "must be >= 1"
                        (fun s -> { s with degrade_factor = f })
                  | other ->
                      Error
                        (Printf.sprintf
                           "unknown key %S (known: loss, cut, crash, degrade, \
                            degrade-mean, degrade-factor)"
                           other))))
    in
    match List.fold_left parse_pair (Ok none) (String.split_on_char ',' str) with
    | Error _ as e -> e
    | Ok s -> (
        match
          v ~loss:s.loss ~cut_rate:s.cut_rate ~degrade_rate:s.degrade_rate
            ~degrade_mean:s.degrade_mean ~degrade_factor:s.degrade_factor
            ~crash_rate:s.crash_rate ()
        with
        | s -> Ok s
        | exception Invalid_argument m -> Error m)

let to_string s =
  if is_none s then "none"
  else
    let fields = ref [] in
    let add key value default = if value <> default then fields := Printf.sprintf "%s=%g" key value :: !fields in
    add "crash" s.crash_rate 0.;
    add "degrade-factor" s.degrade_factor none.degrade_factor;
    add "degrade-mean" s.degrade_mean none.degrade_mean;
    add "degrade" s.degrade_rate 0.;
    add "cut" s.cut_rate 0.;
    add "loss" s.loss 0.;
    String.concat "," !fields

(* Degradation episodes are generated lazily per link, in start order, from
   the link's private stream: [next_start] is the first episode not yet
   materialised, so a query at time [at] only forces episodes with
   [start <= at] and later queries (at any time) see the same draws. *)
type degrade_stream = {
  drng : Rng.t;
  mutable next_start : float;
  mutable episodes : (float * float) list;  (* (start, stop), ascending *)
}

type t = {
  spec : spec;
  n : int;
  t0 : float;  (* time origin; drawn times are offsets from it *)
  crash : float array;  (* per rank; infinity = never *)
  cut : float array;  (* directed link src * n + dst; infinity = never *)
  loss_streams : Rng.t array;  (* per directed link; [||] when loss = 0 *)
  degrade_streams : degrade_stream array;  (* [||] when degrade_rate = 0 *)
}

let create ?(seed = 0) ?(t0 = 0.) ~n spec =
  if n < 1 then invalid_arg "Faults.create: n < 1";
  if not (Float.is_finite t0) then invalid_arg "Faults.create: t0 must be finite";
  (* Field validity: re-run the smart constructor so hand-built records
     cannot smuggle invalid parameters in. *)
  let spec =
    v ~loss:spec.loss ~cut_rate:spec.cut_rate ~degrade_rate:spec.degrade_rate
      ~degrade_mean:spec.degrade_mean ~degrade_factor:spec.degrade_factor
      ~crash_rate:spec.crash_rate ()
  in
  let master = Rng.create seed in
  let links = n * n in
  let crash =
    if spec.crash_rate > 0. then
      Array.init n (fun _ -> Rng.exponential master spec.crash_rate)
    else Array.make n infinity
  in
  let cut =
    if spec.cut_rate > 0. then
      Array.init links (fun idx ->
          if idx / n = idx mod n then infinity
          else Rng.exponential master spec.cut_rate)
    else Array.make 0 0.
  in
  let sub_rng () = Rng.create (Int64.to_int (Rng.bits64 master)) in
  let loss_streams =
    if spec.loss > 0. then Array.init links (fun _ -> sub_rng ()) else [||]
  in
  let degrade_streams =
    if spec.degrade_rate > 0. then
      Array.init links (fun _ ->
          let drng = sub_rng () in
          {
            drng;
            next_start = Rng.exponential drng spec.degrade_rate;
            episodes = [];
          })
    else [||]
  in
  { spec; n; t0; crash; cut; loss_streams; degrade_streams }

let spec t = t.spec
let size t = t.n

let check_rank t i name =
  if i < 0 || i >= t.n then invalid_arg ("Faults." ^ name ^ ": rank out of range")

let crash_time t i =
  check_rank t i "crash_time";
  t.t0 +. t.crash.(i)

let crashed t i ~at = crash_time t i <= at

let link_index t ~src ~dst name =
  check_rank t src name;
  check_rank t dst name;
  (src * t.n) + dst

let cut_time t ~src ~dst =
  let idx = link_index t ~src ~dst "cut_time" in
  if Array.length t.cut = 0 then infinity else t.t0 +. t.cut.(idx)

let link_up t ~src ~dst ~at = cut_time t ~src ~dst > at

let lose t ~src ~dst =
  let idx = link_index t ~src ~dst "lose" in
  if Array.length t.loss_streams = 0 then false
  else Rng.bernoulli t.loss_streams.(idx) t.spec.loss

let slowdown t ~src ~dst ~at =
  let idx = link_index t ~src ~dst "slowdown" in
  if Array.length t.degrade_streams = 0 then 1.
  else begin
    let s = t.degrade_streams.(idx) in
    let at = at -. t.t0 in
    while s.next_start <= at do
      let start = s.next_start in
      let stop = start +. Rng.exponential s.drng (1. /. t.spec.degrade_mean) in
      s.episodes <- s.episodes @ [ (start, stop) ];
      s.next_start <- start +. Rng.exponential s.drng t.spec.degrade_rate
    done;
    if List.exists (fun (start, stop) -> start <= at && at < stop) s.episodes then
      t.spec.degrade_factor
    else 1.
  end

(** Seeded scenario fuzzing with greedy shrinking and reproducers.

    [run] drives {!Scenario.generate} through a property ({!Run.check} by
    default) for a fixed count; the first failing scenario is shrunk
    through {!Scenario.shrink_candidates} to a local minimum — a scenario
    none of whose simplifications still fails — and returned with the
    violation it exhibits.  [write_reproducer] persists the shrunk
    scenario as one JSON line ({!Scenario.to_json} with the violation
    attached) and [replay] re-executes such a file bit-identically:
    everything a scenario does derives from its recorded seed, so the
    replay is the run. *)

type property = Scenario.t -> Invariant.outcome
(** A named-violation predicate over scenarios; [Ok ()] means pass. *)

type failure = {
  original : Scenario.t;  (** as drawn by the generator *)
  scenario : Scenario.t;  (** after shrinking — what the reproducer records *)
  violation : Invariant.violation;  (** exhibited by [scenario] *)
  shrink_steps : int;  (** simplifications adopted *)
  tested : int;  (** scenarios that passed before this one failed *)
}

val shrink :
  ?budget:int ->
  property ->
  Scenario.t ->
  Invariant.violation ->
  Scenario.t * Invariant.violation * int
(** [shrink property sc v] greedily adopts the first
    {!Scenario.shrink_candidates} entry that still fails, to a fixed point
    (or [budget] adoptions, default 100).  Any violation keeps a
    candidate — the minimum may exhibit a different invariant than the
    original; the returned violation is the minimum's. *)

val run :
  ?property:property ->
  ?on_progress:(int -> unit) ->
  ?jobs:int ->
  seed:int ->
  count:int ->
  unit ->
  (int, failure) Stdlib.result
(** [run ~seed ~count ()] checks [count] generated scenarios.  [Ok count]
    if all pass; [Error failure] at the first violation, already shrunk.
    [on_progress] is called with each 1-based index before checking.
    Equal seeds test equal scenario sequences.

    [jobs] (default 1) fans the checks out over a {!Gridb_util.Pool}; the
    scenario sequence, the failure found (always the sequence's {e first}),
    the shrunk reproducer and [tested] are identical for every [jobs] —
    only wall-clock changes.  With [jobs > 1] the whole sequence is
    generated up front ([on_progress] fires during generation) and
    shrinking runs sequentially on the calling domain.
    @raise Invalid_argument if [count < 0]. *)

val write_reproducer : string -> failure -> unit
(** Write the shrunk scenario (violation and detail attached, original
    seed noted) as one JSON line to the given path. *)

type replay_outcome =
  | Confirmed of Invariant.violation
      (** the scenario still fails with the recorded invariant (or the
          file recorded none) *)
  | Different of { recorded : string; got : Invariant.violation }
      (** still fails, but a different invariant than recorded *)
  | Fixed  (** the scenario now passes *)

val replay : ?property:property -> string -> (replay_outcome, string) Stdlib.result
(** Re-execute a reproducer file.  [Error] on unreadable files or
    unparsable scenarios. *)

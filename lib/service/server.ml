module Machines = Gridb_topology.Machines
module Fingerprint = Gridb_topology.Fingerprint
module Heuristics = Gridb_sched.Heuristics
module Instance = Gridb_sched.Instance
module Schedule = Gridb_sched.Schedule
module Session = Gridb_des.Session
module Wire = Gridb_des.Wire
module Engine = Gridb_des.Engine
module Plan = Gridb_des.Plan
module Sink = Gridb_obs.Sink
module Rng = Gridb_util.Rng
module Pool = Gridb_util.Pool

type outcome = {
  request : Workload.request;
  cache : [ `Hit | `Miss | `Invalidated ];
  plan_us : float;
  predicted_us : float;
  decision : Admission.decision;
  result : Session.reliable option;
}

type report = {
  outcomes : outcome array;
  requests : int;
  admitted : int;
  rejected : int;
  cache_stats : Plan_cache.stats;
  hit_rate : float;
  plan_wall_s : float;
  plans_per_sec : float;
  plan_p50_us : float;
  plan_p99_us : float;
  horizon_us : float;
  delivered : int;
  mean_makespan_us : float;
}

let percentile sorted p =
  let m = Array.length sorted in
  if m = 0 then 0.
  else
    let idx = int_of_float (ceil (p /. 100. *. float_of_int m)) - 1 in
    sorted.(min (m - 1) (max 0 idx))

let heuristic_of policy =
  match Heuristics.by_name policy with
  | Some h -> h
  | None -> invalid_arg (Printf.sprintf "Server.run: unknown policy %S" policy)

let run ?(jobs = 1) ?transport ?admission ?cache ?(obs = Sink.null) ?(seed = 0)
    machines requests =
  let admission = match admission with Some a -> a | None -> Admission.create () in
  let cache = match cache with Some c -> c | None -> Plan_cache.create ~obs () in
  let requests = Array.of_list requests in
  let grid = Machines.grid machines in
  let fingerprint = Fingerprint.of_machines machines in
  let key_of (r : Workload.request) =
    Plan_cache.key ~fingerprint ~root:r.Workload.root ~msg:r.Workload.msg
      ~policy:r.Workload.policy
  in
  (* Arrival order must be non-decreasing: the admission controller and the
     sequential cache replay both assume it. *)
  Array.iteri
    (fun i r ->
      if i > 0 && r.Workload.at < requests.(i - 1).Workload.at then
        invalid_arg "Server.run: requests not in arrival order")
    requests;
  let t0 = Unix.gettimeofday () in
  (* Batch planning: the distinct cache keys of the whole request batch,
     first-appearance order, each planned once — in parallel over the pool
     (planning is pure; results land by index, so any --jobs gives the
     same plans).  The sequential replay below then charges hits and
     misses exactly as an online server would have. *)
  let seen = Hashtbl.create 64 in
  let unique = ref [] in
  Array.iter
    (fun r ->
      let k = key_of r in
      if not (Hashtbl.mem seen k) then begin
        Hashtbl.add seen k ();
        unique := k :: !unique
      end)
    requests;
  let unique = Array.of_list (List.rev !unique) in
  let planned =
    Pool.mapi ~jobs
      (fun _ (k : Plan_cache.key) ->
        let t0 = Unix.gettimeofday () in
        let h = heuristic_of k.Plan_cache.policy in
        let inst = Instance.of_grid ~root:k.Plan_cache.root ~msg:k.Plan_cache.bucket grid in
        let s = Heuristics.run h inst in
        let predicted = Schedule.makespan inst s in
        (s, predicted, (Unix.gettimeofday () -. t0) *. 1e6))
      unique
  in
  let plan_tbl = Hashtbl.create 64 in
  Array.iteri (fun i k -> Hashtbl.replace plan_tbl k planned.(i)) unique;
  (* Sequential replay in arrival order: cache accounting, admission, and
     session launch onto ONE engine and ONE wire — admitted broadcasts
     contend for the same NICs. *)
  let n = Machines.count machines in
  let wire = Wire.create ~n in
  let engine = Engine.create ~obs () in
  let base = Rng.create seed in
  let partial =
    Array.map
      (fun (r : Workload.request) ->
        let k = key_of r in
        let schedule, predicted, compute_us = Hashtbl.find plan_tbl k in
        let l0 = Unix.gettimeofday () in
        let _, kind = Plan_cache.lookup cache k ~compute:(fun () -> schedule) in
        let lookup_us = (Unix.gettimeofday () -. l0) *. 1e6 in
        let plan_us = match kind with `Hit -> lookup_us | _ -> compute_us +. lookup_us in
        let decision =
          Admission.decide admission ~now:r.Workload.at ~predicted_makespan:predicted
        in
        let session =
          match decision with
          | Admission.Reject _ -> None
          | Admission.Admit ->
              let plan = Plan.of_cluster_schedule machines schedule in
              let config =
                Session.Config.v
                  ~rng:(Rng.split base r.Workload.rid)
                  ~start_delay:r.Workload.at ~msg:r.Workload.msg ~obs
                  ?transport ()
              in
              Some
                (Session.launch_reliable ~sid:r.Workload.rid ~who:"Server.run" ~wire
                   ~engine config machines plan)
        in
        (r, kind, plan_us, predicted, decision, session))
      requests
  in
  let plan_wall_s = Unix.gettimeofday () -. t0 in
  Engine.run engine;
  let outcomes =
    Array.map
      (fun (request, cache, plan_us, predicted_us, decision, session) ->
        {
          request;
          cache;
          plan_us;
          predicted_us;
          decision;
          result = Option.map Session.reliable_result session;
        })
      partial
  in
  let admitted = ref 0 and delivered = ref 0 and mk_sum = ref 0. in
  Array.iter
    (fun o ->
      match o.result with
      | Some r ->
          incr admitted;
          delivered := !delivered + r.Session.delivered;
          mk_sum := !mk_sum +. (r.Session.r_makespan -. o.request.Workload.at)
      | None -> ())
    outcomes;
  let latencies = Array.map (fun o -> o.plan_us) outcomes in
  Array.sort Float.compare latencies;
  let stats = Plan_cache.stats cache in
  let lookups = stats.Plan_cache.hits + stats.Plan_cache.misses in
  {
    outcomes;
    requests = Array.length requests;
    admitted = !admitted;
    rejected = Array.length requests - !admitted;
    cache_stats = stats;
    hit_rate =
      (if lookups = 0 then 0.
       else float_of_int stats.Plan_cache.hits /. float_of_int lookups);
    plan_wall_s;
    plans_per_sec =
      (if plan_wall_s > 0. then float_of_int (Array.length requests) /. plan_wall_s
       else 0.);
    plan_p50_us = percentile latencies 50.;
    plan_p99_us = percentile latencies 99.;
    horizon_us = Engine.now engine;
    delivered = !delivered;
    mean_makespan_us = (if !admitted = 0 then 0. else !mk_sum /. float_of_int !admitted);
  }

let smoke_lines report =
  let lines = ref [] in
  let addf fmt = Printf.ksprintf (fun s -> lines := s :: !lines) fmt in
  Array.iter
    (fun o ->
      let r = o.request in
      addf "req %-3d at=%.1f root=%d msg=%d policy=%s cache=%s %s%s" r.Workload.rid
        r.Workload.at r.Workload.root r.Workload.msg r.Workload.policy
        (match o.cache with
        | `Hit -> "hit"
        | `Miss -> "miss"
        | `Invalidated -> "invalidated")
        (match o.decision with
        | Admission.Admit -> "admitted"
        | Admission.Reject reason -> "rejected (" ^ reason ^ ")")
        (match o.result with
        | None -> ""
        | Some res ->
            Printf.sprintf " delivered=%d/%d makespan=%.1f" res.Session.delivered
              (Array.length res.Session.r_arrival)
              (res.Session.r_makespan -. r.Workload.at)))
    report.outcomes;
  addf "requests %d admitted %d rejected %d" report.requests report.admitted
    report.rejected;
  addf "cache hits %d misses %d invalidations %d entries %d (hit rate %.3f)"
    report.cache_stats.Plan_cache.hits report.cache_stats.Plan_cache.misses
    report.cache_stats.Plan_cache.invalidations report.cache_stats.Plan_cache.entries
    report.hit_rate;
  addf "delivered ranks %d, mean session makespan %.1f us, horizon %.1f us"
    report.delivered report.mean_makespan_us report.horizon_us;
  List.rev !lines

(** Ablation studies for the design choices DESIGN.md calls out.

    These go beyond the paper's figures: they vary one ingredient at a time
    and report its effect, using the same draw streams as the main figures
    where applicable. *)

val lookahead_sweep : Config.t -> Report.figure
(** Every lookahead function of {!Gridb_sched.Lookahead.all} plugged into
    the ECEF driver (mean makespan vs cluster count) — including Bhat's
    suggested average-based alternatives the paper mentions but does not
    evaluate. *)

val fef_edge_weight : Config.t -> Report.figure
(** FEF selecting by pure latency (the paper's reading) vs by [g + L]
    (transmission time): quantifies how much of FEF's weakness is the edge
    metric rather than the greediness. *)

val intra_shape : Config.t -> Report.figure
(** Intra-cluster tree shape feeding [T_k] (binomial / flat / chain /
    binary / 4-ary): predicted ECEF-LAT broadcast time on the GRID5000
    topology per shape. *)

val mixed_strategy : Config.t -> Report.figure
(** Hit counts of the Section 6 mixed strategy against its two components
    across grid sizes. *)

val completion_models : Config.t -> Report.figure
(** Mean makespan of ECEF and ECEF-LAT under both completion models —
    the modelling ambiguity analysed in EXPERIMENTS.md. *)

val scatter_orders : unit -> Report.figure
(** Future-work scatter: makespan of the four send orders (index, FEF,
    Jackson LDF, brute-force optimal) on the GRID5000 topology across
    message sizes. *)

val multilevel_gain : Config.t -> Report.figure
(** Karonis-style three-level plan vs single-level ECEF-LA vs flat trees on
    a random multilevel topology (DES-executed makespans vs message
    size). *)

val alltoall_aggregation : unit -> Report.figure
(** Hierarchical (cluster-aggregated) alltoall vs direct machine-level
    alltoall on GRID5000 across per-pair sizes, plus blocking vs
    nonblocking simMPI executions of the exchange phase. *)

val optimality_gap : Config.t -> Report.figure
(** Mean heuristic/optimal makespan ratio on instances small enough for the
    brute-force optimum (3-7 clusters) — the yardstick the paper says is
    too expensive and replaces with the "global minimum". *)

val bound_gap : Config.t -> Report.figure
(** Mean heuristic/lower-bound ratio ({!Gridb_sched.Bounds.combined}) up to
    50 clusters: an absolute quality measure that scales where brute force
    cannot. *)

val heterogeneity_sensitivity : Config.t -> Report.figure
(** Varies the upper end of the intra-cluster time range [T] (Table 2 uses
    3000 ms) at a fixed 30-cluster grid: when T dominates, the grid-aware
    heuristics' advantage appears; when T is negligible the classical ones
    suffice — the core hypothesis of Section 5. *)

val root_rotation : unit -> Report.figure
(** Makespan per broadcast root on the GRID5000 topology.  The paper notes
    the flat tree "depends on how the clusters list is arranged with respect
    to the root"; the grid-aware schedules are far less root-sensitive. *)

val local_search : Config.t -> Report.figure
(** Mean makespan reduction obtained by {!Gridb_sched.Refine.improve} on
    top of each heuristic (Bhat's iterative-improvement phase). *)

val metaheuristics : Config.t -> Report.figure
(** Hill climbing ({!Gridb_sched.Refine.improve}), simulated annealing
    ({!Gridb_sched.Refine.anneal}) and the genetic search of the related
    work [18] ({!Gridb_sched.Genetic}) as improvers over the best greedy
    heuristic: mean makespan relative to the greedy portfolio winner. *)

val application_payoff : unit -> Report.figure
(** End-to-end payoff inside an application: total runtime of a 10-iteration
    bulk-synchronous solver (broadcast + compute + allreduce per iteration,
    {!Gridb_mpi.Apps}) on the GRID5000 grid, with the broadcast implemented
    by the default binomial vs the ECEF-LA hierarchical plan. *)

val hierarchy_vs_flat : unit -> Report.figure
(** The paper's Section 1-2 argument quantified: schedule the 88-machine
    grid once hierarchically (6 clusters, the paper's approach) and once at
    machine level (every process a node, Bhat's original setting) with the
    same heuristic; compare delivered makespan and scheduling cost.  The
    hierarchical decomposition gives up little quality for ~3 orders of
    magnitude less scheduling work. *)

val tuned_intra : unit -> Report.figure
(** Auto-tuned intra-cluster broadcast ({!Gridb_collectives.Tuned}) vs the
    fixed binomial tree feeding [T_k]: predicted ECEF-LAT times on
    GRID5000 with both models, plus the per-cluster tuning decisions in
    the notes. *)

val segmented_broadcast : unit -> Report.figure
(** Segmented hierarchical broadcast
    ({!Gridb_extensions.Pipeline_bcast}): simulated makespan vs segment
    count for several message sizes on the GRID5000 ECEF-LA plan. *)

val all : Config.t -> Report.figure list

(** Model of the scheduling cost a heuristic adds to [MPI_Bcast].

    Section 7 observes that "the algorithm complexity is a factor that must
    be considered when implementing more elaborate techniques like
    ECEF-LAT": before the first byte moves, the root runs the heuristic.
    The cost is modelled as (number of candidate evaluations) x (cost per
    evaluation); the counts are derived from the {!Policy} descriptor and
    match {!Engine.run_stats} in [`Naive] mode exactly (up to the first
    FlatTree round):

    - [Root_first] (FlatTree): n selections, O(n);
    - [Select_min] with no lookahead (FEF, ECEF) and [Max_reach]
      (BottomUp): sum over rounds of |A| * |B|, about n^3 / 6;
    - [Select_min] with a lookahead (the ECEF-LA family): adds
      sum over rounds of |B| * (|B| - 1) term evaluations, about n^3 / 3,
      for roughly n^3 / 2 in total. *)

val pair_scan_evaluations : int -> float
(** [sum over rounds r of r * (n - r)] — the full A x B scan. *)

val lookahead_evaluations : int -> float
(** [sum over rounds r of (n - r) * (n - r - 1)] — one [F_j] per receiver
    per round, each folding over [B \ {j}]. *)

val of_policy : n:int -> Policy.t -> float
(** Evaluation count for a policy descriptor; [Sized] policies are
    resolved against [n] first, so [Mixed<...>] is charged for the branch
    it actually runs. *)

val evaluations : n:int -> string -> float
(** Count for a heuristic given by name: {!Policy.by_name} first (which
    understands the parameterised ["ECEF-LA<...>"] and ["Mixed<...>"]
    names), then a string-prefix guess for unknown names (which get the
    ECEF count). *)

val default_per_evaluation_us : float
(** 0.5 us per candidate evaluation — a conservative figure for the 2006-era
    hosts the paper used. *)

val cost_us : ?per_evaluation_us:float -> n:int -> string -> float
(** Scheduling delay (us) to charge before the root's first transmission. *)

type reason =
  | Concurrency of int  (** sessions in flight at decision time *)
  | Backlog of float  (** predicted backlog, us *)
  | Shed_backlog of float  (** low-priority shed: backlog past the watermark *)
  | Shed_circuit of float  (** low-priority shed: open-circuit fraction past threshold *)
  | Bad_policy of string  (** unknown heuristic name (server-side reject) *)

type decision = Admit | Reject of reason

(* The first two render exactly the strings the pre-shedding controller
   produced — the zero-chaos smoke output is pinned byte for byte. *)
let reason_string = function
  | Concurrency n -> Printf.sprintf "concurrency limit (%d in flight)" n
  | Backlog b -> Printf.sprintf "backlog %.0f us over budget" b
  | Shed_backlog b -> Printf.sprintf "shed: backlog %.0f us past watermark" b
  | Shed_circuit f -> Printf.sprintf "shed: open-circuit fraction %.2f past threshold" f
  | Bad_policy p -> Printf.sprintf "unknown policy %S" p

let is_shed = function Shed_backlog _ | Shed_circuit _ -> true | _ -> false

type shed = { watermark_us : float; max_open_frac : float }

let no_shed = { watermark_us = infinity; max_open_frac = infinity }

let shed ?(watermark_us = infinity) ?(max_open_frac = infinity) () =
  if Float.is_nan watermark_us || watermark_us <= 0. then
    invalid_arg "Admission.shed: watermark_us <= 0";
  if Float.is_nan max_open_frac || max_open_frac < 0. then
    invalid_arg "Admission.shed: max_open_frac < 0";
  { watermark_us; max_open_frac }

type t = {
  max_concurrent : int;
  max_backlog_us : float;
  shed : shed;
  (* Predicted finish times of admitted, not-yet-finished sessions,
     ascending.  The population is small (bounded by max_concurrent), so a
     sorted list beats a heap on constant factors and keeps decisions
     trivially deterministic. *)
  mutable inflight : float list;
}

let create ?(max_concurrent = 8) ?(max_backlog_us = infinity) ?(shed = no_shed) () =
  if max_concurrent < 1 then invalid_arg "Admission.create: max_concurrent < 1";
  if max_backlog_us <= 0. then invalid_arg "Admission.create: max_backlog_us <= 0";
  { max_concurrent; max_backlog_us; shed; inflight = [] }

let rec insert t = function
  | [] -> [ t ]
  | x :: rest when x <= t -> x :: insert t rest
  | later -> t :: later

(* Admission is judged on the {e predicted} makespan of the (cached) plan,
   not on simulated completions: the decision is available at request
   arrival, before any execution, and is identical however the batch is
   parallelised.  Prediction errs optimistic under contention (plans are
   costed uncontended), which makes the controller an upper bound on
   admitted load — the honest direction for overload protection.

   Degraded mode: [Low]-priority requests are additionally shed when the
   predicted backlog crosses the shedding watermark (softer than the hard
   budget, so high-priority traffic still lands in the gap between the
   two) or when the caller-supplied open-circuit fraction — the
   server's live health signal — exceeds its threshold. *)
let decide ?(priority = Workload.High) ?(open_frac = 0.) t ~now ~predicted_makespan =
  t.inflight <- List.filter (fun finish -> finish > now) t.inflight;
  let inflight = List.length t.inflight in
  if inflight >= t.max_concurrent then Reject (Concurrency inflight)
  else
    let backlog =
      match t.inflight with [] -> 0. | l -> List.fold_left Float.max 0. l -. now
    in
    if backlog > t.max_backlog_us then Reject (Backlog backlog)
    else if priority = Workload.Low && backlog > t.shed.watermark_us then
      Reject (Shed_backlog backlog)
    else if priority = Workload.Low && open_frac > t.shed.max_open_frac then
      Reject (Shed_circuit open_frac)
    else begin
      t.inflight <- insert (now +. predicted_makespan) t.inflight;
      Admit
    end

let inflight t ~now = List.length (List.filter (fun f -> f > now) t.inflight)
let shedding t = t.shed <> no_shed

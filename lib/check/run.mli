(** One scenario through the whole pipeline, every check attached.

    [check] executes a {!Scenario.t} end to end — resolve the recipe,
    schedule with both engine modes, validate every schedule invariant,
    apply the metamorphic laws, execute on the DES, validate the event
    stream — and reports the first violation.  On top of the {!Invariant}
    and {!Metamorphic} catalogues it contributes four checks of its own:

    - ["scenario"]: the recipe itself must resolve (policy, transport and
      fault strings parse);
    - ["engine-differential"]: the incremental engine's schedule must be
      structurally identical to the naive oracle's;
    - ["makespan-cross-check"]: the fault-free DES makespan must equal the
      analytic {!Gridb_sched.Schedule.makespan} of the schedule it
      executes;
    - ["arrival-accounting"] / ["delivered-accounting"]: under faults, the
      executor's arrival vector, its [delivered] counter and the [Arrival]
      events of the stream must tell one consistent story;
    - ["churn-accounting"]: under dynamics, the executor's [left] /
      [joined] reports must match the model's pre-drawn departures and
      joins within the horizon, nothing may be delivered to a rank at or
      after its departure, and joins outside the horizon must never
      receive. *)

val check : Scenario.t -> Invariant.outcome
(** The full pipeline; first violation wins. *)

val run_invariant_names : string list
(** The checks [check] itself contributes (the {!Invariant} and
    {!Metamorphic} catalogues list theirs). *)

val check_service : Scenario.t -> Invariant.outcome
(** The service family: derive a seeded open-loop request stream over the
    scenario's grid ({!Scenario.service_seed}, default mix, ~40 requests
    in a 1e6-us window), serve it through {!Gridb_service.Server.run} with
    the scenario's transport, and validate the multi-session run:

    - ["service-accounting"]: admitted + rejected = requests, and every
      request charges the plan cache exactly one lookup;
    - ["session-attribution"]: the stream's tagged sids are exactly the
      admitted request ids, and each session announces its root;
    - per-session, on each sid's slice of the stream: at-most-once
      delivery, causality, NIC serialization, pLogP gap conformance and
      the arrival/delivered books (the {!Invariant} stream catalogue plus
      ["arrival-accounting"], details prefixed with the session id);
    - ["session-clock"]: nothing in a session precedes its request's
      arrival time;
    - ["sessions-nic-serialization"]: one-port discipline of the shared
      wire across concurrent sessions. *)

val service_invariant_names : string list
(** The checks only [check_service] contributes
    (["sessions-nic-serialization"] is listed with the stream
    invariants). *)

val check_chaos : Scenario.t -> Invariant.outcome
(** The chaos family: a deadline/priority request stream over the
    scenario's grid ({!Scenario.chaos_seed}; finite deadlines, half the
    traffic high-priority), served through {!Gridb_service.Server.run}
    with the scenario's transport {e and} its fault/dynamics specs, a
    retry budget of 2 and a shedding admission controller — then the
    resilience bookkeeping validated end to end:

    - ["chaos-accounting"]: admitted + rejected = requests; cache lookups
      = planned requests + retry replans; the per-class SLO tables
      partition the global counters; stream [Retry] events match the
      requeue counter;
    - ["retry-monotonicity"]: attempts respect the budget, the
      delivered-rank union never falls below the final attempt's tally nor
      exceeds the population (retries never double-count delivery);
    - ["shed-ordering"]: only low-priority requests are ever shed, and the
      stream's [Shed] events agree with the report;
    - ["session-attribution"]: tagged sids are exactly
      [attempt * requests + rid] for every launched attempt;
    - ["deadline-bookkeeping"]: each request's completion recomputed from
      the tagged arrival events of all its attempts must reproduce the
      report's completion times, deadline verdicts and miss counter. *)

val chaos_invariant_names : string list
(** The checks only [check_chaos] contributes. *)

val check_opt : Scenario.t -> Invariant.outcome
(** The optimality-oracle family: solve the scenario's instance exactly
    with {!Gridb_opt.Exact} (scenarios are n <= 8, well inside the solver
    ceiling) and hold the whole system against the certificate:

    - the certified optimal schedule itself passes every schedule
      invariant of the {!Invariant} catalogue;
    - ["opt-lower-bound"]: no heuristic — the seven of the registry plus
      the scenario's own policy — beats the certified optimum, and the
      analytic {!Gridb_sched.Bounds.combined} never exceeds it;
    - ["opt-des-replay"]: the certified schedule executed fault-free on
      the DES reproduces the certified makespan exactly;
    - ["opt-homogeneous"]: on a uniform instance drawn from
      {!Scenario.opt_seed} (Table-2 parameter ranges), Träff's log-time
      construction, its closed-form [t* + T] makespan and the B&B optimum
      all agree, the construction's schedule passes the catalogue, and the
      same no-heuristic-beats-it sandwich holds. *)

val opt_invariant_names : string list
(** The checks only [check_opt] contributes. *)

(** Typed simulation/scheduling events — the vocabulary of the
    observability bus.

    Every instrumented layer speaks this one type: the DES executors emit
    the data-plane events ([Send_start] .. [Give_up]), the event engine its
    timer lifecycle, simMPI its message plane, the scheduling engine its
    per-round picks, work counters and heap maintenance, MagPIe its cache
    and strategy decisions, and the repair machinery its splices.  Sinks
    ({!Sink}) receive events; consumers ({!Profile},
    [Gridb_des.Trace.of_events], [Gridb_sched.Gantt.render_events]) fold
    over the stream.

    Times are producer-defined: simulation events carry simulated
    microseconds, span events whatever clock the producer sampled
    ({!Span} uses CPU time) — only differences within one producer are
    meaningful. *)

type heap_op =
  | Rescore  (** a stale candidate entry was re-scored on pop *)
  | Drop  (** a dead lookahead entry was permanently dropped *)

type t =
  (* DES data plane *)
  | Send_start of {
      src : int;
      dst : int;
      time : float;  (** injection start *)
      msg : int;  (** bytes *)
      intra : bool;  (** both ranks in the same cluster *)
      try_no : int;  (** 0 for first attempts, >= 1 for retransmissions *)
    }
  | Send_end of {
      src : int;
      dst : int;
      time : float;  (** sender NIC free again (gap end) *)
      arrival : float;  (** when the message reaches [dst] (if it does) *)
    }
  | Arrival of { src : int; dst : int; time : float }
      (** [dst] holds the message (first delivery only). *)
  | Ack of { src : int; dst : int; time : float }
      (** control-plane acknowledgement for edge [src -> dst] delivered *)
  | Retransmit of { src : int; dst : int; time : float; try_no : int; rto : float }
      (** timeout-triggered re-send; [rto] is the (doubled) next timeout *)
  | Give_up of { src : int; dst : int; time : float }
      (** retry budget exhausted; the edge is abandoned *)
  | Circuit_open of { src : int; dst : int; time : float }
      (** the adaptive transport's per-link breaker tripped: consecutive
          timeouts (or an RTT blow-up) took the link out of service *)
  | Circuit_close of { src : int; dst : int; time : float }
      (** a half-open probe succeeded; the link is back in service *)
  | Reroute of { dst : int; old_parent : int; new_parent : int; time : float }
      (** the adaptive transport re-parented an orphaned receiver (and its
          planned subtree) onto an already-delivered rank *)
  (* DES engine timers *)
  | Timer_set of { id : int; time : float; fire_at : float }
  | Timer_fire of { id : int; time : float }
  | Timer_cancel of { id : int; time : float }
  (* simMPI message plane *)
  | Msg_send of { src : int; dst : int; tag : int; size : int; time : float }
  | Msg_recv of { src : int; dst : int; tag : int; time : float }
  | Recv_timeout of { rank : int; time : float }
      (** a [recv_timeout] deadline expired with no matching message *)
  (* scheduling *)
  | Policy_round of { round : int; src : int; dst : int }
      (** one selection round of the scheduling engine picked [src -> dst] *)
  | Heap_op of { op : heap_op; receiver : int; sender : int }
  | Cache_hit of { key : string }
  | Cache_miss of { key : string }
  | Strategy_selected of { name : string; predicted : float }
      (** adaptive strategy selection settled on [name] *)
  | Repair_splice of { crashed : int; replanned : int }
      (** schedule repair replayed around [crashed] coordinators and
          replanned [replanned] transmissions *)
  (* broadcast service (control plane) *)
  | Shed of { rid : int; priority : string; reason : string; time : float }
      (** degraded-mode admission dropped request [rid] ([priority] is the
          request's class, [reason] the typed shed reason rendered) *)
  | Retry of { rid : int; attempt : int; time : float }
      (** the server re-enqueued a partially-delivered request; [attempt]
          is the 1-based retry number, [time] when the relaunch starts *)
  | Deadline_miss of { rid : int; deadline : float; finish : float }
      (** request [rid] (deadline [deadline] us after arrival) did not
          reach full delivery until [finish] — or never, [finish = nan] *)
  (* generic *)
  | Counter of { name : string; value : int }
  | Span_start of { name : string; time : float }
  | Span_end of { name : string; time : float }
  | Tagged of { sid : int; event : t }
      (** [event], correlated with broadcast session / service request
          [sid].  The session layer wraps every event it publishes so
          multi-broadcast streams can be attributed per request; JSON adds
          one flat ["sid"] field to the inner event's object.  [event] is
          never itself [Tagged] when built with {!tag}. *)

val untag : t -> t
(** Strip any [Tagged] wrappers ({!tag} never nests them, but [untag] is
    total anyway). *)

val sid : t -> int option
(** The correlation id, for [Tagged] events. *)

val tag : sid:int -> t -> t
(** [tag ~sid e] is [Tagged { sid; event = untag e }]. *)

val to_json : t -> string
(** One-line JSON object, no trailing newline.  Floats are printed with
    17 significant digits so {!of_json} round-trips them bit-exactly. *)

val of_json : string -> (t, string) result
(** Parse one line produced by {!to_json} (tolerates surrounding
    whitespace).  [Error] carries a human-readable reason. *)

val pp : Format.formatter -> t -> unit
(** Debug rendering (the JSON form). *)

val equal : t -> t -> bool
(** Structural equality ([Stdlib.( = )]); exposed for tests. *)

(** One scenario through the whole pipeline, every check attached.

    [check] executes a {!Scenario.t} end to end — resolve the recipe,
    schedule with both engine modes, validate every schedule invariant,
    apply the metamorphic laws, execute on the DES, validate the event
    stream — and reports the first violation.  On top of the {!Invariant}
    and {!Metamorphic} catalogues it contributes four checks of its own:

    - ["scenario"]: the recipe itself must resolve (policy, transport and
      fault strings parse);
    - ["engine-differential"]: the incremental engine's schedule must be
      structurally identical to the naive oracle's;
    - ["makespan-cross-check"]: the fault-free DES makespan must equal the
      analytic {!Gridb_sched.Schedule.makespan} of the schedule it
      executes;
    - ["arrival-accounting"] / ["delivered-accounting"]: under faults, the
      executor's arrival vector, its [delivered] counter and the [Arrival]
      events of the stream must tell one consistent story;
    - ["churn-accounting"]: under dynamics, the executor's [left] /
      [joined] reports must match the model's pre-drawn departures and
      joins within the horizon, nothing may be delivered to a rank at or
      after its departure, and joins outside the horizon must never
      receive. *)

val check : Scenario.t -> Invariant.outcome
(** The full pipeline; first violation wins. *)

val run_invariant_names : string list
(** The checks [check] itself contributes (the {!Invariant} and
    {!Metamorphic} catalogues list theirs). *)

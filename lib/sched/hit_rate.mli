(** Hit-rate analysis (Figure 4).

    Finding the true optimum is too expensive past a handful of clusters, so
    the paper scores each heuristic by how often it attains the "global
    minimum" — the best makespan {e among the compared heuristics} on each
    random instance.  Ties count as hits for every heuristic achieving the
    minimum (within a relative tolerance), which is why the per-technique
    hit counts of Figure 4 sum to more than the iteration count. *)

type outcome = {
  name : string;
  hits : int;  (** iterations where this heuristic matched the global minimum *)
  iterations : int;
  mean_makespan : float;  (** average makespan across the same draws, us *)
  stddev_makespan : float;  (** sample standard deviation, us (0 for < 2 draws) *)
}

val stderr_makespan : outcome -> float
(** Standard error of the mean, [stddev / sqrt iterations]; 0 when empty. *)

val hit_fraction : outcome -> float

val run :
  ?epsilon:float ->
  ?model:Schedule.completion_model ->
  rng:Gridb_util.Rng.t ->
  iterations:int ->
  n:int ->
  Instance.ranges ->
  Heuristics.t list ->
  outcome list
(** [run ~rng ~iterations ~n ranges hs]: draws [iterations] random
    instances of [n] clusters and scores every heuristic of [hs].
    [epsilon] (default 1e-9) is the relative tie tolerance; [model]
    (default [After_sends]) selects the completion accounting.
    @raise Invalid_argument if [hs] is empty or [iterations < 1]. *)

val run_instances :
  ?epsilon:float ->
  ?model:Schedule.completion_model ->
  Instance.t list ->
  Heuristics.t list ->
  outcome list
(** Same scoring over a fixed list of instances (deterministic tests). *)

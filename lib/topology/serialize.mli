(** Textual (de)serialisation of grids.

    A small line-oriented format so topologies can be stored next to
    experiment results and fed back to the CLI:

    {v
    grid <n>
    cluster <id> <name> <size> L <latency_us> G <size>:<us>,<size>:<us>,...
    link <i> <j> L <latency_us> G <size>:<us>,...
    v}

    Links are directed; a symmetric topology simply lists both directions
    (or relies on {!to_string} which always writes both).  Lines starting
    with ['#'] and blank lines are ignored.  Cluster names are written with
    spaces mapped to ['_'] (the format is space-separated); parsing does
    not map them back. *)

val to_string : Grid.t -> string
val of_string : string -> (Grid.t, string) result
(** Parse failure yields [Error reason] with a line number. *)

val save : string -> Grid.t -> unit
(** Write to a file.  @raise Sys_error on IO failure. *)

val load : string -> (Grid.t, string) result

(** A scheduling problem instance.

    The heuristics only consume three ingredients per Section 3 of the
    paper: the inter-cluster latency [L_ij], the inter-cluster gap
    [g_ij(m)] already evaluated at the broadcast's message size, and the
    predicted intra-cluster broadcast time [T_k].  An instance freezes these
    into plain matrices, decoupling the schedulers from the topology model:
    instances come either from a full {!Gridb_topology.Grid.t} or directly
    from the random draws of Table 2. *)

type t = private {
  n : int;  (** number of clusters, >= 1 *)
  root : int;  (** cluster of the broadcast root *)
  latency : float array array;  (** [latency.(i).(j)] = [L_ij] in us *)
  gap : float array array;  (** [gap.(i).(j)] = [g_ij(m)] in us *)
  lat_flat : float array;
      (** row-major mirror of [latency]: [lat_flat.((i * n) + j) =
          latency.(i).(j)] — the schedulers' hot paths index this (one
          bounds check, no row pointer chase) *)
  gap_flat : float array;  (** row-major mirror of [gap] *)
  intra : float array;  (** [intra.(k)] = [T_k] in us *)
}

val v :
  root:int ->
  latency:float array array ->
  gap:float array array ->
  intra:float array ->
  t
(** Copies its inputs.  @raise Invalid_argument on dimension mismatch,
    non-square matrices, negative entries or out-of-range root. *)

val of_grid :
  ?shape:Gridb_collectives.Tree.shape ->
  root:int ->
  msg:int ->
  Gridb_topology.Grid.t ->
  t
(** Evaluates every link's pLogP parameters at [msg] bytes and predicts each
    cluster's [T_k] with {!Gridb_collectives.Cost.broadcast_time} ([shape]
    defaults to the paper's binomial tree). *)

val of_machines :
  root:int -> msg:int -> Gridb_topology.Machines.t -> t
(** Machine-level (flat) instance: every machine is its own "cluster" with
    [T = 0] and pairwise link parameters from the machine view.  This is
    the setting of Bhat et al. — per-process scheduling with no hierarchy —
    which the paper argues "becomes clearly expensive when the number of
    processes augments"; the complexity-vs-quality experiment quantifies
    that claim by scheduling the same grid both ways.  [root] is a global
    rank. *)

type ranges = {
  latency_us : float * float;
  gap_us : float * float;
  intra_us : float * float;
}
(** Uniform draw ranges for random instances. *)

val table2_ranges : ranges
(** The paper's Table 2 (converted to us): [L] in 1-15 ms, [g] in
    100-600 ms, [T] in 20-3000 ms, for a 1 MB message. *)

val random : rng:Gridb_util.Rng.t -> n:int -> ranges -> t
(** Symmetric [L] and [g] matrices drawn i.i.d. from the ranges, root 0.
    @raise Invalid_argument if [n < 1]. *)

val send_time : t -> int -> int -> float
(** [send_time t i j = gap.(i).(j) +. latency.(i).(j)]. *)

val cluster_ids : t -> int list
(** [0 .. n-1]. *)

val pp : Format.formatter -> t -> unit

(** Local-search refinement of broadcast schedules.

    A schedule of the Section 3 model is fully determined by its sequence of
    (sender, receiver) picks; the timing is forced by the gap/latency rules.
    This module improves a heuristic's pick sequence by hill climbing over
    two neighbourhoods:
    - {e swap}: exchange two adjacent picks (reorders transmissions);
    - {e re-parent}: give one receiver a different sender among the clusters
      already in [A] at that point.

    Bhat et al. close their heuristics with a comparable iterative-
    improvement phase; here it doubles as an empirical upper-bound tightener
    for the gap-to-lower-bound reports. *)

val picks_of_schedule : Schedule.t -> (int * int) list
(** The (src, dst) sequence in round order. *)

val replay : Instance.t -> (int * int) list -> Schedule.t option
(** Rebuild a timed schedule from picks; [None] if the sequence is invalid
    (a sender not yet in [A], a receiver already in [A], ...). *)

val improve :
  ?model:Schedule.completion_model ->
  ?max_rounds:int ->
  Instance.t ->
  Schedule.t ->
  Schedule.t
(** Steepest-descent hill climbing until a local optimum or [max_rounds]
    (default 50) neighbourhood scans.  The result is never worse than the
    input under [model] (default [After_sends]) and is always valid. *)

val improvement_ratio :
  ?model:Schedule.completion_model -> Instance.t -> Schedule.t -> float
(** [makespan (improve s) /. makespan s] — <= 1. *)

val anneal :
  ?model:Schedule.completion_model ->
  ?seed:int ->
  ?steps:int ->
  ?initial_temperature:float ->
  Instance.t ->
  Schedule.t ->
  Schedule.t
(** Simulated annealing over the same neighbourhoods: [steps] random moves
    (default 2000) with geometric cooling from [initial_temperature]
    (default 10% of the input makespan, us).  Escapes the local optima the
    hill climber stops at; returns the best valid schedule seen, which is
    never worse than the input. *)

(* Tests for the adaptive transport state: Jacobson/Karn RTT estimation,
   RTO convergence and re-inflation, circuit-breaker transitions, and the
   estimated-parameter export.  The estimator is pure bookkeeping, so every
   test drives it directly with synthetic samples/timeouts. *)

module Adaptive = Gridb_des.Adaptive
module Params = Gridb_plogp.Params

let feq ?(eps = 1e-9) a b =
  let scale = Float.max 1. (Float.max (Float.abs a) (Float.abs b)) in
  Float.abs (a -. b) <= eps *. scale

let check_feq ?eps name expected actual =
  Alcotest.(check bool) (Printf.sprintf "%s: %g ~ %g" name expected actual) true
    (feq ?eps expected actual)

(* --- config validation --------------------------------------------------- *)

let test_config_validation () =
  Alcotest.check_raises "alpha > 1" (Invalid_argument "Adaptive.v: alpha outside (0, 1]")
    (fun () -> ignore (Adaptive.v ~alpha:1.5 ()));
  Alcotest.check_raises "beta = 0" (Invalid_argument "Adaptive.v: beta outside (0, 1]")
    (fun () -> ignore (Adaptive.v ~beta:0. ()));
  Alcotest.check_raises "rto_max < rto_min" (Invalid_argument "Adaptive.v: rto_max < rto_min")
    (fun () -> ignore (Adaptive.v ~rto_min:10. ~rto_max:5. ()));
  Alcotest.check_raises "threshold 0"
    (Invalid_argument "Adaptive.v: breaker_threshold < 1") (fun () ->
      ignore (Adaptive.v ~breaker_threshold:0 ()));
  Alcotest.check_raises "blowup 1" (Invalid_argument "Adaptive.v: blowup_factor <= 1")
    (fun () -> ignore (Adaptive.v ~blowup_factor:1. ()));
  Alcotest.check_raises "negative reroutes"
    (Invalid_argument "Adaptive.v: negative max_reroutes") (fun () ->
      ignore (Adaptive.v ~max_reroutes:(-1) ()));
  Alcotest.check_raises "create re-validates" (Invalid_argument "Adaptive.v: rto_max < rto_min")
    (fun () ->
      let bad = { Adaptive.default with Adaptive.rto_max = 0.5 } in
      ignore (Adaptive.create ~config:bad ~n:2 ()));
  Alcotest.check_raises "n < 1" (Invalid_argument "Adaptive.create: n < 1") (fun () ->
      ignore (Adaptive.create ~n:0 ()))

(* --- estimator seeding and fallback -------------------------------------- *)

let test_first_sample_seeds_rfc6298 () =
  let t = Adaptive.create ~n:4 () in
  check_feq ~eps:0. "fallback before any sample" 500.
    (Adaptive.rto t ~src:0 ~dst:1 ~nominal:250. ~fallback:500.);
  Alcotest.(check (option (float 0.))) "no srtt yet" None (Adaptive.srtt t ~src:0 ~dst:1);
  (match Adaptive.on_sample t ~src:0 ~dst:1 ~rtt:100. ~retransmitted:false ~now:100. with
  | `No_change -> ()
  | _ -> Alcotest.fail "closed circuit must stay closed");
  check_feq ~eps:0. "SRTT = R" 100. (Option.get (Adaptive.srtt t ~src:0 ~dst:1));
  check_feq ~eps:0. "RTTVAR = R/2" 50. (Option.get (Adaptive.rttvar t ~src:0 ~dst:1));
  (* RTO = SRTT + 4 RTTVAR = 300, fallback no longer consulted. *)
  check_feq ~eps:0. "RTO from estimator" 300.
    (Adaptive.rto t ~src:0 ~dst:1 ~nominal:250. ~fallback:500.);
  Alcotest.(check int) "one sample" 1 (Adaptive.samples t ~src:0 ~dst:1);
  (* Other links are untouched. *)
  Alcotest.(check int) "links independent" 0 (Adaptive.samples t ~src:1 ~dst:0)

let test_rto_clamped () =
  let t = Adaptive.create ~config:(Adaptive.v ~rto_min:10. ~rto_max:250. ()) ~n:2 () in
  check_feq ~eps:0. "fallback floored" 10.
    (Adaptive.rto t ~src:0 ~dst:1 ~nominal:1. ~fallback:1.);
  ignore (Adaptive.on_sample t ~src:0 ~dst:1 ~rtt:100. ~retransmitted:false ~now:0.);
  (* SRTT + 4 RTTVAR = 300 > cap. *)
  check_feq ~eps:0. "estimator capped" 250.
    (Adaptive.rto t ~src:0 ~dst:1 ~nominal:1. ~fallback:1.)

(* --- Karn's rule ---------------------------------------------------------- *)

let test_karn_exclusion () =
  let t = Adaptive.create ~n:2 () in
  ignore (Adaptive.on_sample t ~src:0 ~dst:1 ~rtt:100. ~retransmitted:false ~now:0.);
  (* An ambiguous (retransmitted-edge) sample must not move the estimator,
     however extreme. *)
  ignore (Adaptive.on_sample t ~src:0 ~dst:1 ~rtt:1e7 ~retransmitted:true ~now:1.);
  check_feq ~eps:0. "SRTT unmoved" 100. (Option.get (Adaptive.srtt t ~src:0 ~dst:1));
  check_feq ~eps:0. "RTTVAR unmoved" 50. (Option.get (Adaptive.rttvar t ~src:0 ~dst:1));
  Alcotest.(check int) "sample not counted" 1 (Adaptive.samples t ~src:0 ~dst:1)

(* Property: the estimator state after any mixed sample sequence equals the
   state after the subsequence of clean samples — retransmitted ones are
   invisible to SRTT/RTTVAR/samples (they only touch the breaker). *)
let karn_exclusion_property =
  let sample = QCheck.(pair (float_range 1. 1e6) bool) in
  QCheck.Test.make ~name:"Karn: retransmitted samples never enter the estimator" ~count:(Testutil.count 200)
    QCheck.(list_of_size Gen.(int_range 0 40) sample)
    (fun samples ->
      let full = Adaptive.create ~n:2 () in
      let clean = Adaptive.create ~n:2 () in
      List.iteri
        (fun i (rtt, retransmitted) ->
          let now = float_of_int i in
          ignore (Adaptive.on_sample full ~src:0 ~dst:1 ~rtt ~retransmitted ~now);
          if not retransmitted then
            ignore (Adaptive.on_sample clean ~src:0 ~dst:1 ~rtt ~retransmitted:false ~now))
        samples;
      Adaptive.srtt full ~src:0 ~dst:1 = Adaptive.srtt clean ~src:0 ~dst:1
      && Adaptive.rttvar full ~src:0 ~dst:1 = Adaptive.rttvar clean ~src:0 ~dst:1
      && Adaptive.samples full ~src:0 ~dst:1 = Adaptive.samples clean ~src:0 ~dst:1)

(* --- RTO convergence and re-inflation ------------------------------------- *)

(* Property: on a stable link (constant round trip R) the RTO contracts to
   R: RTTVAR decays geometrically from R/2, so after 64 samples
   RTO = R + 4 * (R/2) * 0.75^63 is R to within a fraction of a percent. *)
let rto_convergence_property =
  QCheck.Test.make ~name:"RTO converges to R on a stable link" ~count:(Testutil.count 50)
    QCheck.(float_range 10. 1e6)
    (fun r ->
      let t = Adaptive.create ~n:2 () in
      for i = 1 to 64 do
        ignore
          (Adaptive.on_sample t ~src:0 ~dst:1 ~rtt:r ~retransmitted:false
             ~now:(float_of_int i))
      done;
      let rto = Adaptive.rto t ~src:0 ~dst:1 ~nominal:r ~fallback:1e9 in
      rto >= r && rto <= 1.01 *. r)

let test_rto_reinflates_on_degradation () =
  let t = Adaptive.create ~n:2 () in
  (* The first call latches the link's nominal round trip. *)
  ignore (Adaptive.rto t ~src:0 ~dst:1 ~nominal:100. ~fallback:100.);
  for i = 1 to 64 do
    ignore
      (Adaptive.on_sample t ~src:0 ~dst:1 ~rtt:100. ~retransmitted:false
         ~now:(float_of_int i))
  done;
  let converged = Adaptive.rto t ~src:0 ~dst:1 ~nominal:100. ~fallback:1e9 in
  Alcotest.(check bool) "converged near 100" true (converged < 101.);
  (* The link degrades 3x: valid samples re-inflate the RTO past the new
     round trip within a handful of observations (RTTVAR spikes first). *)
  for i = 65 to 72 do
    ignore
      (Adaptive.on_sample t ~src:0 ~dst:1 ~rtt:300. ~retransmitted:false
         ~now:(float_of_int i))
  done;
  let reinflated = Adaptive.rto t ~src:0 ~dst:1 ~nominal:100. ~fallback:1e9 in
  Alcotest.(check bool)
    (Printf.sprintf "re-inflated %g > 300" reinflated)
    true (reinflated > 300.);
  Alcotest.(check bool) "quality reflects the drift" true
    (Adaptive.quality t ~src:0 ~dst:1 > 1.)

(* Regression: the fallback RTO carries the executor's rto_mult/rto_min on
   top of the raw round trip.  Only the fallback may drive the pre-sample
   RTO; only the un-inflated nominal may drive quality — a healthy link
   (SRTT = raw round trip) must read exactly 1, not 1/rto_mult. *)
let test_nominal_separate_from_fallback () =
  let t = Adaptive.create ~n:2 () in
  check_feq ~eps:0. "pre-sample RTO is the fallback" 200.
    (Adaptive.rto t ~src:0 ~dst:1 ~nominal:100. ~fallback:200.);
  ignore (Adaptive.on_sample t ~src:0 ~dst:1 ~rtt:100. ~retransmitted:false ~now:0.);
  check_feq ~eps:0. "healthy link has quality 1" 1. (Adaptive.quality t ~src:0 ~dst:1)

(* --- circuit breaker ------------------------------------------------------ *)

let test_breaker_timeout_transitions () =
  let t = Adaptive.create ~n:2 () in
  ignore (Adaptive.rto t ~src:0 ~dst:1 ~nominal:50. ~fallback:100.);
  Alcotest.(check bool) "1st strike stays closed" false
    (Adaptive.on_timeout t ~src:0 ~dst:1 ~now:10.);
  Alcotest.(check bool) "2nd strike stays closed" false
    (Adaptive.on_timeout t ~src:0 ~dst:1 ~now:20.);
  Alcotest.(check bool) "3rd strike opens" true
    (Adaptive.on_timeout t ~src:0 ~dst:1 ~now:30.);
  Alcotest.(check bool) "open circuit" true (Adaptive.circuit t ~src:0 ~dst:1 = `Open);
  (* Cooldown = cooldown_mult * fallback RTO (not the raw nominal) = 400
     from t=30. *)
  Alcotest.(check bool) "unusable during cooldown" false
    (Adaptive.usable t ~src:0 ~dst:1 ~now:100.);
  Alcotest.(check bool) "still open" true (Adaptive.circuit t ~src:0 ~dst:1 = `Open);
  Alcotest.(check bool) "usable after cooldown (probe)" true
    (Adaptive.usable t ~src:0 ~dst:1 ~now:500.);
  Alcotest.(check bool) "half-open now" true
    (Adaptive.circuit t ~src:0 ~dst:1 = `Half_open);
  (* A failed probe re-opens (restarts the cooldown), without re-reporting
     the open transition. *)
  Alcotest.(check bool) "failed probe is not a fresh open" false
    (Adaptive.on_timeout t ~src:0 ~dst:1 ~now:600.);
  Alcotest.(check bool) "back to open" true (Adaptive.circuit t ~src:0 ~dst:1 = `Open);
  (* A successful probe closes; even an ambiguous (Karn-excluded) success
     counts for the breaker. *)
  Alcotest.(check bool) "usable again" true (Adaptive.usable t ~src:0 ~dst:1 ~now:2000.);
  (match Adaptive.on_sample t ~src:0 ~dst:1 ~rtt:100. ~retransmitted:true ~now:2000. with
  | `Closed -> ()
  | _ -> Alcotest.fail "successful probe must close the circuit");
  Alcotest.(check bool) "closed" true (Adaptive.circuit t ~src:0 ~dst:1 = `Closed);
  Alcotest.(check int) "Karn still excluded the probe sample" 0
    (Adaptive.samples t ~src:0 ~dst:1)

let test_breaker_strikes_reset_on_success () =
  let t = Adaptive.create ~n:2 () in
  ignore (Adaptive.on_timeout t ~src:0 ~dst:1 ~now:1.);
  ignore (Adaptive.on_timeout t ~src:0 ~dst:1 ~now:2.);
  ignore (Adaptive.on_sample t ~src:0 ~dst:1 ~rtt:50. ~retransmitted:false ~now:3.);
  (* The success reset the streak: two more timeouts are strikes 1 and 2,
     not 3 and 4. *)
  Alcotest.(check bool) "strike 1 after reset" false
    (Adaptive.on_timeout t ~src:0 ~dst:1 ~now:4.);
  Alcotest.(check bool) "strike 2 after reset" false
    (Adaptive.on_timeout t ~src:0 ~dst:1 ~now:5.);
  Alcotest.(check bool) "strike 3 opens" true (Adaptive.on_timeout t ~src:0 ~dst:1 ~now:6.)

let test_breaker_blowup_opens () =
  let t = Adaptive.create ~n:2 () in
  ignore (Adaptive.on_sample t ~src:0 ~dst:1 ~rtt:100. ~retransmitted:false ~now:0.);
  (* 8x SRTT is the default blow-up threshold; 900 > 800 opens at once. *)
  (match Adaptive.on_sample t ~src:0 ~dst:1 ~rtt:900. ~retransmitted:false ~now:1. with
  | `Opened -> ()
  | _ -> Alcotest.fail "blow-up sample must open the circuit");
  Alcotest.(check bool) "open after blow-up" true (Adaptive.circuit t ~src:0 ~dst:1 = `Open);
  (* The blow-up sample itself still entered the estimator (it was not
     ambiguous). *)
  Alcotest.(check int) "two samples" 2 (Adaptive.samples t ~src:0 ~dst:1)

let test_usable_now_is_pure () =
  let t = Adaptive.create ~n:2 () in
  ignore (Adaptive.rto t ~src:0 ~dst:1 ~nominal:50. ~fallback:100.);
  for i = 1 to 3 do
    ignore (Adaptive.on_timeout t ~src:0 ~dst:1 ~now:(float_of_int (10 * i)))
  done;
  Alcotest.(check bool) "open" true (Adaptive.circuit t ~src:0 ~dst:1 = `Open);
  Alcotest.(check bool) "unusable during cooldown" false
    (Adaptive.usable_now t ~src:0 ~dst:1 ~now:100.);
  (* Cooldown (400 from t=30) elapsed: the pure read answers true but the
     circuit must stay open — scoring a candidate is not probing it, so
     only [usable] may half-open the breaker. *)
  Alcotest.(check bool) "usable after cooldown" true
    (Adaptive.usable_now t ~src:0 ~dst:1 ~now:500.);
  Alcotest.(check bool) "still open (no transition)" true
    (Adaptive.circuit t ~src:0 ~dst:1 = `Open);
  Alcotest.(check bool) "usable applies it" true (Adaptive.usable t ~src:0 ~dst:1 ~now:500.);
  Alcotest.(check bool) "half-open now" true (Adaptive.circuit t ~src:0 ~dst:1 = `Half_open)

(* --- estimated parameters -------------------------------------------------- *)

let test_estimated_params_rescale () =
  let nominal = Params.linear ~latency:50. ~g0:10. ~bandwidth_mb_s:100. in
  let t = Adaptive.create ~n:2 () in
  (* Nominal round trip 200; observed SRTT settles at 400 -> quality 2.
     The fallback RTO is deliberately inflated (2x nominal, as the
     executor's rto_mult would): it must not leak into the quality
     denominator. *)
  ignore (Adaptive.rto t ~src:0 ~dst:1 ~nominal:200. ~fallback:400.);
  for i = 1 to 64 do
    ignore
      (Adaptive.on_sample t ~src:0 ~dst:1 ~rtt:400. ~retransmitted:false
         ~now:(float_of_int i))
  done;
  check_feq "quality 2" 2. (Adaptive.quality t ~src:0 ~dst:1);
  let est = Adaptive.estimated_params t ~src:0 ~dst:1 nominal in
  check_feq "latency rescaled" (2. *. Params.latency nominal) (Params.latency est);
  check_feq "gap rescaled" (2. *. Params.gap nominal 1_000_000) (Params.gap est 1_000_000);
  (* Links without samples export the nominal view unchanged. *)
  let un = Adaptive.estimated_params t ~src:1 ~dst:0 nominal in
  check_feq ~eps:0. "no samples, no rescale" (Params.latency nominal) (Params.latency un)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "adaptive"
    [
      ("config", [ quick "validation" test_config_validation ]);
      ( "estimator",
        [
          quick "first sample seeds RFC 6298" test_first_sample_seeds_rfc6298;
          quick "rto clamped" test_rto_clamped;
          quick "karn exclusion" test_karn_exclusion;
          QCheck_alcotest.to_alcotest karn_exclusion_property;
          QCheck_alcotest.to_alcotest rto_convergence_property;
          quick "re-inflates on degradation" test_rto_reinflates_on_degradation;
          quick "nominal separate from fallback" test_nominal_separate_from_fallback;
        ] );
      ( "breaker",
        [
          quick "timeout transitions" test_breaker_timeout_transitions;
          quick "strikes reset on success" test_breaker_strikes_reset_on_success;
          quick "blow-up opens" test_breaker_blowup_opens;
          quick "usable_now is pure" test_usable_now_is_pure;
        ] );
      ("estimated params", [ quick "rescale" test_estimated_params_rescale ]);
    ]

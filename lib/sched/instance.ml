type t = {
  n : int;
  root : int;
  latency : float array array;
  gap : float array array;
  lat_flat : float array;
  gap_flat : float array;
  intra : float array;
}

let copy_matrix m = Array.map Array.copy m

(* Row-major copy: [flat.((i * n) + j) = m.(i).(j)].  The schedulers' hot
   paths index the flat mirrors (one bounds check and no pointer chase per
   entry); the nested matrices stay authoritative for everything else. *)
let flatten n m =
  let flat = Array.make (n * n) 0. in
  for i = 0 to n - 1 do
    Array.blit m.(i) 0 flat (i * n) n
  done;
  flat

let v ~root ~latency ~gap ~intra =
  let n = Array.length intra in
  if n < 1 then invalid_arg "Instance.v: empty instance";
  if root < 0 || root >= n then invalid_arg "Instance.v: root out of range";
  let check_matrix name m =
    if Array.length m <> n then invalid_arg ("Instance.v: " ^ name ^ " height mismatch");
    Array.iter
      (fun row ->
        if Array.length row <> n then invalid_arg ("Instance.v: " ^ name ^ " width mismatch");
        Array.iter
          (fun x -> if x < 0. || Float.is_nan x then invalid_arg ("Instance.v: bad " ^ name ^ " entry"))
          row)
      m
  in
  check_matrix "latency" latency;
  check_matrix "gap" gap;
  Array.iter (fun x -> if x < 0. || Float.is_nan x then invalid_arg "Instance.v: bad intra entry") intra;
  let latency = copy_matrix latency and gap = copy_matrix gap in
  {
    n;
    root;
    latency;
    gap;
    lat_flat = flatten n latency;
    gap_flat = flatten n gap;
    intra = Array.copy intra;
  }

let of_grid ?(shape = Gridb_collectives.Tree.Binomial) ~root ~msg grid =
  let module Grid = Gridb_topology.Grid in
  let module Cluster = Gridb_topology.Cluster in
  let n = Grid.size grid in
  let latency =
    Array.init n (fun i -> Array.init n (fun j -> if i = j then 0. else Grid.latency grid i j))
  in
  let gap =
    Array.init n (fun i -> Array.init n (fun j -> if i = j then 0. else Grid.gap grid i j msg))
  in
  let intra =
    Array.init n (fun k ->
        let c = Grid.cluster grid k in
        Gridb_collectives.Cost.broadcast_time ~shape ~params:c.Cluster.intra
          ~size:c.Cluster.size ~msg ())
  in
  v ~root ~latency ~gap ~intra

let of_machines ~root ~msg machines =
  let module Machines = Gridb_topology.Machines in
  let n = Machines.count machines in
  let params = Array.make_matrix n n None in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then params.(i).(j) <- Some (Machines.link_params machines i j)
    done
  done;
  let latency =
    Array.init n (fun i ->
        Array.init n (fun j ->
            match params.(i).(j) with
            | Some p -> Gridb_plogp.Params.latency p
            | None -> 0.))
  in
  let gap =
    Array.init n (fun i ->
        Array.init n (fun j ->
            match params.(i).(j) with
            | Some p -> Gridb_plogp.Params.gap p msg
            | None -> 0.))
  in
  v ~root ~latency ~gap ~intra:(Array.make n 0.)

type ranges = {
  latency_us : float * float;
  gap_us : float * float;
  intra_us : float * float;
}

let table2_ranges =
  {
    latency_us = (1_000., 15_000.);
    gap_us = (100_000., 600_000.);
    intra_us = (20_000., 3_000_000.);
  }

let random ~rng ~n ranges =
  if n < 1 then invalid_arg "Instance.random: n < 1";
  let draw (lo, hi) = Gridb_util.Rng.float_in rng lo hi in
  let latency = Array.make_matrix n n 0. in
  let gap = Array.make_matrix n n 0. in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let l = draw ranges.latency_us and g = draw ranges.gap_us in
      latency.(i).(j) <- l;
      latency.(j).(i) <- l;
      gap.(i).(j) <- g;
      gap.(j).(i) <- g
    done
  done;
  let intra = Array.init n (fun _ -> draw ranges.intra_us) in
  v ~root:0 ~latency ~gap ~intra

let send_time t i j =
  let k = (i * t.n) + j in
  t.gap_flat.(k) +. t.lat_flat.(k)

let cluster_ids t = List.init t.n (fun i -> i)

let pp ppf t =
  Format.fprintf ppf "@[<v>instance: %d clusters, root %d@," t.n t.root;
  for i = 0 to t.n - 1 do
    Format.fprintf ppf "  T_%d = %.3g us@," i t.intra.(i)
  done;
  Format.fprintf ppf "@]"

(** Broadcast-as-a-service: many broadcasts, one engine, one wire.

    [run] serves a batch of {!Workload} requests the way an online
    broadcast service would:

    + {b Batch planning} — the batch's {e distinct} {!Plan_cache} keys are
      planned once each, fanned out over a {!Gridb_util.Pool} ([jobs]).
      Planning is pure and results land by index, so every [jobs] setting
      yields the same plans.
    + {b Replay} — requests are replayed sequentially in arrival order:
      each charges the plan cache (hit / miss / divergence invalidation),
      passes {!Admission} on its plan's {e predicted} makespan, and, if
      admitted, launches a {!Gridb_des.Session} at its arrival time.
    + {b Execution} — one [Engine.run] drives every admitted session;
      all of them contend on one shared {!Gridb_des.Wire}, so the one-port
      gap serialization holds across concurrent broadcasts.  Session
      events are tagged with the request id ([sid = rid]).

    Everything except the host-clock timing fields ([plan_*], [plans_per_sec])
    is bit-identical across [jobs] — the property the CI smoke check
    byte-compares. *)

type outcome = {
  request : Workload.request;
  cache : [ `Hit | `Miss | `Invalidated ];
  plan_us : float;  (** host-clock plan latency (compute cost on a miss) *)
  predicted_us : float;  (** the plan's predicted makespan *)
  decision : Admission.decision;
  result : Gridb_des.Session.reliable option;  (** [None] iff rejected *)
}

type report = {
  outcomes : outcome array;  (** one per request, arrival order *)
  requests : int;
  admitted : int;
  rejected : int;
  cache_stats : Plan_cache.stats;
  hit_rate : float;  (** hits / lookups *)
  plan_wall_s : float;  (** host wall clock of planning + replay *)
  plans_per_sec : float;  (** requests served per host second *)
  plan_p50_us : float;  (** median per-request plan latency *)
  plan_p99_us : float;
  horizon_us : float;  (** simulated quiescence *)
  delivered : int;  (** ranks delivered, summed over admitted sessions *)
  mean_makespan_us : float;  (** mean (makespan - arrival) over admitted *)
}

val run :
  ?jobs:int ->
  ?transport:Gridb_des.Session.transport ->
  ?admission:Admission.t ->
  ?cache:Plan_cache.t ->
  ?obs:Gridb_obs.Sink.t ->
  ?seed:int ->
  Gridb_topology.Machines.t ->
  Workload.request list ->
  report
(** Serve [requests] (chronological; rids should be dense from 0 — session
    [rid] seeds its rng stream via {!Gridb_util.Rng.split}[ seed rid]).
    Defaults: sequential planning, [Fixed] transport, a fresh
    {!Admission.create}[ ()] controller, a fresh cache, null sink, seed 0.
    @raise Invalid_argument on out-of-order requests or an unknown policy
    name. *)

val smoke_lines : report -> string list
(** Deterministic rendering of the jobs-invariant part of a report (no
    host-clock fields) — one line per request plus summary lines; the CI
    smoke check byte-compares it at [--jobs 1] vs [4]. *)

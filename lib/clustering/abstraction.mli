(** From a machine-level latency matrix and a partition to a cluster-level
    {!Gridb_topology.Grid.t}.

    This closes the loop of the authors' methodology: measure all-pairs
    latencies, detect logical clusters (tolerance rho), then feed the
    cluster-level topology to the scheduling heuristics.  Cluster and link
    latencies are medians of the underlying machine pairs; gap functions
    are synthesised from the latency class by a pluggable rule. *)

val default_params_of_latency : float -> Gridb_plogp.Params.t
(** GRID5000-flavoured synthesis: bandwidth by latency class (see
    {!Gridb_topology.Grid5000.inter_bandwidth_mb_s}), [g0] of 50 us for WAN
    classes and 20 us locally. *)

val grid_of_matrix :
  ?params_of_latency:(float -> Gridb_plogp.Params.t) ->
  ?name_prefix:string ->
  float array array ->
  Partition.t ->
  Gridb_topology.Grid.t
(** [grid_of_matrix matrix partition] builds one cluster per partition
    block: cluster size = block size, intra latency = median of internal
    pairs (or a 10 us floor for singletons), inter-cluster latency = median
    of cross pairs.  @raise Invalid_argument if the matrix and partition
    sizes differ. *)

val median_cross_latency : float array array -> int list -> int list -> float
(** Median latency between two disjoint machine sets.
    @raise Invalid_argument if either set is empty or the sets overlap. *)

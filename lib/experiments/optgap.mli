(** Optimality-gap scorecard: every heuristic against the certified
    optimum of {!Gridb_opt.Exact}.

    The paper scores its heuristics only against each other ("it is too
    expensive to find the optimal schedule"); on solver-sized instances we
    can do better and measure each heuristic's gap ratio
    [makespan / optimal] (>= 1, 1 = optimal) per topology family and
    size.  [bench/optgap.exe] sweeps this into BENCH_optgap.json and the
    CI job gates on the ratios; {!sample} is the per-instance kernel it
    and the tests share. *)

type topology = Table2 | Random | Multilevel | Homogeneous

val topologies : (string * topology) list
(** ["table2"], ["random"], ["multilevel"], ["homogeneous"] — the
    scorecard's topology axis. *)

val instance : topology -> seed:int -> n:int -> msg:int -> Gridb_sched.Instance.t
(** One seeded instance of the family: [Table2] draws the paper's Table 2
    parameter matrices directly, [Random] and [Multilevel] evaluate a
    generated {!Gridb_topology.Grid.t} at [msg] bytes ([Multilevel] pairs
    two clusters per site, so [n] must be even), [Homogeneous] draws one
    uniform (L, g, T) triple from the Table 2 ranges.
    @raise Invalid_argument if [n < 2], or [Multilevel] with odd [n]. *)

type sample = {
  opt : float;  (** certified optimal makespan, us *)
  bound_ratio : float;  (** [opt / Bounds.combined]: analytic-bound tightness *)
  expanded : int;  (** B&B states branched on *)
  gaps : (string * float) list;
      (** per heuristic, registry order: [makespan /. opt] *)
  traff_agrees : bool option;
      (** [Homogeneous] only: Träff's closed form equals the certified
          optimum (to {!Gridb_check.Invariant.feq} tolerance — but
          computed here with plain relative 1e-9 to avoid the
          dependency) *)
}

val sample : topology -> seed:int -> n:int -> msg:int -> sample
(** Solve one instance exactly and score all seven heuristics on it.
    @raise Invalid_argument as {!instance}, or beyond the solver
    ceiling. *)

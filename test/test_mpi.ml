(* Tests for gridb_mpi: the effects-based simMPI runtime and the collectives
   written on it.  Key cross-validation: simMPI timings equal the DES plan
   executor and the closed-form pLogP models when noise is off. *)

module Runtime = Gridb_mpi.Runtime
module Collectives = Gridb_mpi.Collectives
module Machines = Gridb_topology.Machines
module Generators = Gridb_topology.Generators
module Grid5000 = Gridb_topology.Grid5000
module Params = Gridb_plogp.Params
module Cost = Gridb_collectives.Cost
module Tree = Gridb_collectives.Tree
module Plan = Gridb_des.Plan
module Exec = Gridb_des.Exec

let feq ?(eps = 1e-9) a b =
  let scale = Float.max 1. (Float.max (Float.abs a) (Float.abs b)) in
  Float.abs (a -. b) <= eps *. scale

let check_feq ?eps name expected actual =
  Alcotest.(check bool) (Printf.sprintf "%s: %g ~ %g" name expected actual) true
    (feq ?eps expected actual)

let homog_params = Params.linear ~latency:50. ~g0:20. ~bandwidth_mb_s:100.

let homogeneous n =
  Machines.expand
    (Generators.homogeneous ~n:1 ~cluster_size:n ~inter:homog_params ~intra:homog_params)

(* --- Runtime basics --------------------------------------------------------- *)

let test_two_rank_send_recv () =
  let m = homogeneous 2 in
  let got = ref None in
  let r =
    Runtime.run_exn m (fun ~rank ~size:_ ->
        if rank = 0 then Runtime.Api.send ~dst:1 ~msg_size:1000 ~payload:2.5 ()
        else begin
          let msg = Runtime.Api.recv ~src:0 () in
          got := Some msg
        end)
  in
  match !got with
  | None -> Alcotest.fail "message not delivered"
  | Some msg ->
      Alcotest.(check int) "src" 0 msg.Runtime.src;
      Alcotest.(check int) "size" 1000 msg.Runtime.msg_size;
      check_feq "payload" 2.5 msg.Runtime.payload;
      check_feq "delivery = g + L" (Params.send_time homog_params 1000)
        msg.Runtime.delivered_at;
      check_feq "receiver finish = delivery" msg.Runtime.delivered_at
        r.Runtime.finish.(1);
      (* sender returns after the gap, before the latency *)
      check_feq "sender finish = gap" (Params.gap homog_params 1000) r.Runtime.finish.(0)

let test_send_serialises_on_nic () =
  let m = homogeneous 3 in
  let r =
    Runtime.run_exn m (fun ~rank ~size:_ ->
        if rank = 0 then begin
          Runtime.Api.send ~dst:1 ~msg_size:1000 ();
          Runtime.Api.send ~dst:2 ~msg_size:1000 ()
        end
        else ignore (Runtime.Api.recv ~src:0 ()))
  in
  let g = Params.gap homog_params 1000 and l = Params.latency homog_params in
  check_feq "first delivery" (g +. l) r.Runtime.finish.(1);
  check_feq "second delivery waits for the gap" ((2. *. g) +. l) r.Runtime.finish.(2)

let test_recv_filters () =
  let m = homogeneous 3 in
  let order = ref [] in
  ignore
    (Runtime.run_exn m (fun ~rank ~size:_ ->
         match rank with
         | 0 -> Runtime.Api.send ~dst:2 ~tag:7 ~msg_size:10 ()
         | 1 -> Runtime.Api.send ~dst:2 ~tag:9 ~msg_size:10_000_000 ()
         | _ ->
             (* tag 9 arrives much later; ask for it first *)
             let m9 = Runtime.Api.recv ~tag:9 () in
             let m7 = Runtime.Api.recv ~tag:7 () in
             order := [ m9.Runtime.tag; m7.Runtime.tag ]))
  |> ignore;
  Alcotest.(check (list int)) "filter respected" [ 9; 7 ] !order

let test_deadlock_detection () =
  let m = homogeneous 2 in
  let r = Runtime.run m (fun ~rank ~size:_ -> if rank = 0 then ignore (Runtime.Api.recv ())) in
  Alcotest.(check (list int)) "rank 0 deadlocked" [ 0 ] r.Runtime.deadlocked;
  Alcotest.check_raises "run_exn raises"
    (Failure "simMPI: deadlock, ranks [0] blocked in recv") (fun () ->
      ignore (Runtime.run_exn m (fun ~rank ~size:_ -> if rank = 0 then ignore (Runtime.Api.recv ()))))

let test_compute_advances_time () =
  let m = homogeneous 2 in
  let r = Runtime.run_exn m (fun ~rank ~size:_ -> if rank = 0 then Runtime.Api.compute 777.) in
  check_feq "finish after compute" 777. r.Runtime.finish.(0);
  check_feq "other rank immediate" 0. r.Runtime.finish.(1)

let test_send_to_self_rejected () =
  let m = homogeneous 2 in
  Alcotest.check_raises "self send" (Invalid_argument "simMPI: send to self") (fun () ->
      ignore
        (Runtime.run_exn m (fun ~rank ~size:_ ->
             if rank = 0 then Runtime.Api.send ~dst:0 ~msg_size:1 ())))

let test_api_outside_run_raises () =
  Alcotest.(check bool) "unhandled effect" true
    (try
       ignore (Runtime.Api.time ());
       false
     with Effect.Unhandled _ -> true)

(* --- Collectives: timing equals the closed forms ---------------------------- *)

let test_bcast_matches_cost_model () =
  List.iter
    (fun n ->
      let m = homogeneous n in
      let r =
        Runtime.run_exn m (fun ~rank ~size ->
            Collectives.bcast ~rank ~size ~root:0 ~msg:50_000 ())
      in
      check_feq
        (Printf.sprintf "binomial n=%d" n)
        (Cost.broadcast_time ~params:homog_params ~size:n ~msg:50_000 ())
        r.Runtime.makespan)
    [ 1; 2; 3; 8; 17; 64 ]

let test_bcast_shapes_match_cost () =
  let n = 12 in
  let m = homogeneous n in
  List.iter
    (fun shape ->
      let r =
        Runtime.run_exn m (fun ~rank ~size ->
            Collectives.bcast ~shape ~rank ~size ~root:0 ~msg:10_000 ())
      in
      check_feq (Tree.shape_name shape)
        (Cost.broadcast_time ~shape ~params:homog_params ~size:n ~msg:10_000 ())
        r.Runtime.makespan)
    Tree.all_shapes

let test_bcast_nonzero_root () =
  let n = 9 in
  let m = homogeneous n in
  let r =
    Runtime.run_exn m (fun ~rank ~size -> Collectives.bcast ~rank ~size ~root:4 ~msg:1_000 ())
  in
  check_feq "same completion as root 0"
    (Cost.broadcast_time ~params:homog_params ~size:n ~msg:1_000 ())
    r.Runtime.makespan;
  Alcotest.(check int) "n-1 messages" (n - 1) r.Runtime.messages

let test_bcast_plan_equals_exec () =
  let grid = Grid5000.grid () in
  let m = Machines.expand grid in
  let inst = Gridb_sched.Instance.of_grid ~root:0 ~msg:1_000_000 grid in
  let sched = Gridb_sched.Heuristics.run Gridb_sched.Heuristics.ecef_lat_max inst in
  let plan = Plan.of_cluster_schedule m sched in
  let des = Exec.run ~msg:1_000_000 m plan in
  let r =
    Runtime.run_exn m (fun ~rank ~size:_ -> Collectives.bcast_plan ~rank plan ~msg:1_000_000)
  in
  check_feq "simMPI = DES" des.Exec.makespan r.Runtime.makespan

let test_allgather_matches_formula () =
  let n = 10 in
  let m = homogeneous n in
  let r =
    Runtime.run_exn m (fun ~rank ~size -> Collectives.allgather_ring ~rank ~size ~msg:5_000 ())
  in
  check_feq "ring formula"
    (Cost.allgather_ring_time ~params:homog_params ~size:n ~msg:5_000)
    r.Runtime.makespan;
  Alcotest.(check int) "n(n-1) messages" (n * (n - 1)) r.Runtime.messages

let test_scatter_payloads () =
  let n = 6 in
  let m = homogeneous n in
  let received = Array.make n (-1.) in
  ignore
    (Runtime.run_exn m (fun ~rank ~size ->
         received.(rank) <- Collectives.scatter ~rank ~size ~root:2 ~msg:1_000 ()));
  Array.iteri
    (fun rank payload ->
      check_feq (Printf.sprintf "rank %d got its id" rank) (float_of_int rank) payload)
    received

let test_gather_collects_in_rank_order () =
  let n = 5 in
  let m = homogeneous n in
  let collected = ref [] in
  ignore
    (Runtime.run_exn m (fun ~rank ~size ->
         let r =
           Collectives.gather ~rank ~size ~root:0 ~msg:100
             ~payload:(float_of_int (10 * rank))
         in
         if rank = 0 then collected := r));
  Alcotest.(check (list (float 0.0))) "rank order" [ 0.; 10.; 20.; 30.; 40. ] !collected

let test_reduce_and_allreduce () =
  let n = 13 in
  let m = homogeneous n in
  let at_root = ref None and everywhere = Array.make n nan in
  ignore
    (Runtime.run_exn m (fun ~rank ~size ->
         (match Collectives.reduce ~rank ~size ~root:0 ~msg:8 ~value:(float_of_int rank) ( +. ) with
         | Some total -> at_root := Some total
         | None -> ());
         everywhere.(rank) <-
           Collectives.allreduce ~rank ~size ~msg:8 ~value:1. ( +. )));
  (match !at_root with
  | Some total -> check_feq "reduce sum" (float_of_int (n * (n - 1) / 2)) total
  | None -> Alcotest.fail "root got no reduction");
  Array.iteri
    (fun rank v -> check_feq (Printf.sprintf "allreduce at %d" rank) (float_of_int n) v)
    everywhere

let test_reduce_max_operator () =
  let n = 7 in
  let m = homogeneous n in
  let result = ref None in
  ignore
    (Runtime.run_exn m (fun ~rank ~size ->
         match
           Collectives.reduce ~rank ~size ~root:0 ~msg:8
             ~value:(float_of_int ((rank * 3) mod 5))
             Float.max
         with
         | Some v -> result := Some v
         | None -> ()));
  match !result with
  | Some v -> check_feq "max" 4. v
  | None -> Alcotest.fail "no result"

let test_barrier_synchronises () =
  let n = 8 in
  let m = homogeneous n in
  (* Stagger ranks with compute, then barrier: everyone finishes together at
     >= the slowest rank's offset. *)
  let finish = ref [||] in
  let r =
    Runtime.run_exn m (fun ~rank ~size ->
        Runtime.Api.compute (float_of_int rank *. 1_000.);
        Collectives.barrier ~rank ~size ())
  in
  finish := r.Runtime.finish;
  let slowest_offset = 7_000. in
  Array.iteri
    (fun rank t ->
      Alcotest.(check bool)
        (Printf.sprintf "rank %d after barrier >= slowest" rank)
        true (t >= slowest_offset))
    !finish

let test_alltoall_completes () =
  let n = 6 in
  let m = homogeneous n in
  let r =
    Runtime.run_exn m (fun ~rank ~size -> Collectives.alltoall ~rank ~size ~msg:2_000 ())
  in
  Alcotest.(check int) "n(n-1) messages" (n * (n - 1)) r.Runtime.messages;
  Alcotest.(check (list int)) "no deadlock" [] r.Runtime.deadlocked

let test_noise_reproducible () =
  let m = homogeneous 16 in
  let program ~rank ~size = Collectives.bcast ~rank ~size ~root:0 ~msg:100_000 () in
  let a = Runtime.run_exn ~noise:(Gridb_des.Noise.Lognormal 0.1) ~seed:7 m program in
  let b = Runtime.run_exn ~noise:(Gridb_des.Noise.Lognormal 0.1) ~seed:7 m program in
  let c = Runtime.run_exn ~noise:(Gridb_des.Noise.Lognormal 0.1) ~seed:8 m program in
  check_feq "same seed" a.Runtime.makespan b.Runtime.makespan;
  Alcotest.(check bool) "different seed" true
    (not (feq a.Runtime.makespan c.Runtime.makespan))

let collective_roots_agree =
  QCheck.Test.make ~name:"bcast completion is root-invariant on homogeneous clusters"
    ~count:(Testutil.count 30)
    QCheck.(pair (int_range 2 40) (int_range 0 1000))
    (fun (n, seed) ->
      let root = seed mod n in
      let m = homogeneous n in
      let r =
        Runtime.run_exn m (fun ~rank ~size ->
            Collectives.bcast ~rank ~size ~root ~msg:10_000 ())
      in
      feq r.Runtime.makespan
        (Cost.broadcast_time ~params:homog_params ~size:n ~msg:10_000 ()))

(* --- Nonblocking sends ------------------------------------------------------ *)

let test_isend_returns_immediately () =
  let m = homogeneous 2 in
  let observed = ref nan in
  ignore
    (Runtime.run_exn m (fun ~rank ~size:_ ->
         if rank = 0 then begin
           let req = Runtime.Api.isend ~dst:1 ~msg_size:1_000_000 () in
           observed := Runtime.Api.time ();
           Runtime.Api.wait req
         end
         else ignore (Runtime.Api.recv ())));
  check_feq "isend returns at t=0" 0. !observed

let test_isend_wait_blocks_until_injection () =
  let m = homogeneous 2 in
  let after_wait = ref nan in
  ignore
    (Runtime.run_exn m (fun ~rank ~size:_ ->
         if rank = 0 then begin
           let req = Runtime.Api.isend ~dst:1 ~msg_size:1000 () in
           Runtime.Api.wait req;
           after_wait := Runtime.Api.time ();
           (* waiting twice is harmless *)
           Runtime.Api.wait req
         end
         else ignore (Runtime.Api.recv ())));
  check_feq "wait until gap end" (Params.gap homog_params 1000) !after_wait

let test_isend_serialises_like_send () =
  (* Two isends reserve the NIC in order; deliveries match blocking sends. *)
  let m = homogeneous 3 in
  let r =
    Runtime.run_exn m (fun ~rank ~size:_ ->
        if rank = 0 then begin
          let r1 = Runtime.Api.isend ~dst:1 ~msg_size:1000 () in
          let r2 = Runtime.Api.isend ~dst:2 ~msg_size:1000 () in
          Runtime.Api.wait r1;
          Runtime.Api.wait r2
        end
        else ignore (Runtime.Api.recv ~src:0 ()))
  in
  let g = Params.gap homog_params 1000 and l = Params.latency homog_params in
  check_feq "first" (g +. l) r.Runtime.finish.(1);
  check_feq "second" ((2. *. g) +. l) r.Runtime.finish.(2)

let test_alltoall_nonblocking_faster () =
  let grid =
    Generators.homogeneous ~n:2 ~cluster_size:4
      ~inter:(Params.linear ~latency:5_000. ~g0:100. ~bandwidth_mb_s:2.)
      ~intra:homog_params
  in
  let m = Machines.expand grid in
  let blocking =
    Runtime.run_exn m (fun ~rank ~size -> Collectives.alltoall ~rank ~size ~msg:1_000 ())
  in
  let nonblocking =
    Runtime.run_exn m (fun ~rank ~size ->
        Collectives.alltoall_nonblocking ~rank ~size ~msg:1_000 ())
  in
  Alcotest.(check int) "same message count" blocking.Runtime.messages
    nonblocking.Runtime.messages;
  Alcotest.(check bool) "nonblocking at least as fast" true
    (nonblocking.Runtime.makespan <= blocking.Runtime.makespan +. 1e-9)

(* --- Application skeletons ---------------------------------------------------- *)

module Apps = Gridb_mpi.Apps

let test_solver_runs_and_scales () =
  let m = homogeneous 16 in
  let run iterations =
    (Apps.run_solver ~iterations ~compute_us:1_000. ~msg:100_000 m).Runtime.makespan
  in
  let one = run 1 and four = run 4 in
  Alcotest.(check bool) "positive" true (one > 0.);
  (* BSP iterations cannot overlap more than fully and cannot be slower than
     sequential repetition *)
  Alcotest.(check bool) "superlinear lower" true (four >= 2. *. one);
  Alcotest.(check bool) "at most sequential" true (four <= 4. *. one +. 1e-6)

let test_solver_includes_compute () =
  let m = homogeneous 8 in
  let fast = (Apps.run_solver ~iterations:2 ~compute_us:0. ~msg:10_000 m).Runtime.makespan in
  let slow =
    (Apps.run_solver ~iterations:2 ~compute_us:50_000. ~msg:10_000 m).Runtime.makespan
  in
  Alcotest.(check bool) "compute time visible" true (slow >= fast +. 2. *. 50_000. -. 1e-6)

let test_solver_better_bcast_helps () =
  let grid = Grid5000.grid () in
  let m = Machines.expand grid in
  let inst = Gridb_sched.Instance.of_grid ~root:0 ~msg:500_000 grid in
  let plan =
    Plan.of_cluster_schedule m (Gridb_sched.Heuristics.run Gridb_sched.Heuristics.ecef_la inst)
  in
  let default =
    (Apps.run_solver ~iterations:3 ~compute_us:10_000. ~msg:500_000 m).Runtime.makespan
  in
  let scheduled =
    (Apps.run_solver ~bcast:(Apps.plan_bcast plan) ~iterations:3 ~compute_us:10_000.
       ~msg:500_000 m)
      .Runtime.makespan
  in
  Alcotest.(check bool) "grid-aware broadcast shortens the application" true
    (scheduled < default)

let test_master_worker_runs () =
  let m = homogeneous 8 in
  let r =
    Runtime.run_exn m (fun ~rank ~size ->
        Apps.master_worker ~rounds:3 ~task_msg:10_000 ~result_msg:1_000 ~compute_us:5_000.
          ~rank ~size ())
  in
  Alcotest.(check (list int)) "no deadlock" [] r.Runtime.deadlocked;
  (* 3 rounds x (7 tasks + 7 results) messages *)
  Alcotest.(check int) "message count" (3 * 14) r.Runtime.messages

let test_solver_noisy_iterations_do_not_cross_talk () =
  (* Under heavy noise, iteration tags must keep the collectives separate:
     the run completes without deadlock and every allreduce total is n. *)
  let m = homogeneous 12 in
  let ok = ref true in
  let r =
    Runtime.run ~noise:(Gridb_des.Noise.Lognormal 0.5) ~seed:13 m (fun ~rank ~size ->
        for it = 1 to 3 do
          Collectives.bcast ~tag:(2 * it) ~rank ~size ~root:0 ~msg:10_000 ();
          let total =
            Collectives.allreduce ~tag:((2 * it) + 1) ~rank ~size ~msg:8 ~value:1. ( +. )
          in
          if total <> float_of_int size then ok := false
        done)
  in
  Alcotest.(check (list int)) "no deadlock" [] r.Runtime.deadlocked;
  Alcotest.(check bool) "allreduce totals intact under reordering" true !ok

(* --- Benchmarks (pLogP measurement over the simulated wire) ----------------- *)

let test_ping_pong_matches_rtt () =
  let m = homogeneous 2 in
  let rtt = Gridb_mpi.Benchmarks.ping_pong m ~a:0 ~b:1 ~msg:4_096 in
  check_feq "rtt formula" (Params.rtt homog_params 4_096) rtt

let test_gap_of_train_exact () =
  let m = homogeneous 2 in
  let g = Gridb_mpi.Benchmarks.gap_of_train m ~a:0 ~b:1 ~msg:10_000 in
  check_feq "gap recovered" (Params.gap homog_params 10_000) g

let test_measure_link_recovers_ground_truth () =
  (* The strongest end-to-end check: run the measurement benchmark on the
     simulated wire and compare against the topology's pLogP parameters. *)
  let grid = Grid5000.grid () in
  let m = Machines.expand grid in
  (* link between the Orsay-A and IDPOT-A coordinators: ranks 0 and 60 *)
  let truth = Machines.link_params m 0 60 in
  let recovered = Gridb_mpi.Benchmarks.measure_link m ~a:0 ~b:60 in
  check_feq ~eps:1e-6 "latency" (Params.latency truth) (Params.latency recovered);
  List.iter
    (fun msg ->
      check_feq ~eps:1e-6
        (Printf.sprintf "gap at %d" msg)
        (Params.gap truth msg) (Params.gap recovered msg))
    [ 0; 1_024; 65_536; 1_048_576 ]

let test_measure_link_with_noise_close () =
  let m = homogeneous 2 in
  let recovered =
    Gridb_mpi.Benchmarks.measure_link ~noise:(Gridb_des.Noise.Lognormal 0.03) ~seed:5 m
      ~a:0 ~b:1
  in
  let t = Params.gap homog_params 100_000 and r = Params.gap recovered 100_000 in
  Alcotest.(check bool) "within 10%" true (Float.abs (r -. t) /. t < 0.10)

let test_benchmarks_reject () =
  let m = homogeneous 2 in
  Alcotest.check_raises "a = b" (Invalid_argument "Benchmarks: a = b") (fun () ->
      ignore (Gridb_mpi.Benchmarks.ping_pong m ~a:1 ~b:1 ~msg:1))

(* --- Failure injection ------------------------------------------------------- *)

let test_dead_rank_blocks_receivers () =
  let m = homogeneous 3 in
  let r =
    Runtime.run m
      ~failures:[ Runtime.Dead_rank 1 ]
      (fun ~rank ~size:_ ->
        if rank = 0 then Runtime.Api.send ~dst:2 ~msg_size:10 ()
        else if rank = 2 then begin
          ignore (Runtime.Api.recv ~src:0 ());
          (* rank 1 is dead: this recv can never complete *)
          ignore (Runtime.Api.recv ~src:1 ())
        end)
  in
  Alcotest.(check (list int)) "rank 2 deadlocks" [ 2 ] r.Runtime.deadlocked;
  Alcotest.(check bool) "dead rank never finished" true (Float.is_nan r.Runtime.finish.(1))

let test_dead_rank_swallows_messages () =
  let m = homogeneous 2 in
  let r =
    Runtime.run m
      ~failures:[ Runtime.Dead_rank 1 ]
      (fun ~rank ~size:_ -> if rank = 0 then Runtime.Api.send ~dst:1 ~msg_size:10 ())
  in
  Alcotest.(check int) "nothing delivered" 0 r.Runtime.messages;
  Alcotest.(check (list int)) "no deadlock" [] r.Runtime.deadlocked

let test_drop_message_loses_exactly_nth () =
  let m = homogeneous 2 in
  let received = ref [] in
  let r =
    Runtime.run m
      ~failures:[ Runtime.Drop_message { src = 0; dst = 1; nth = 1 } ]
      (fun ~rank ~size:_ ->
        if rank = 0 then
          for tag = 0 to 2 do
            Runtime.Api.send ~dst:1 ~tag ~msg_size:10 ()
          done
        else begin
          (* the middle message (tag 1) is lost; expect tags 0 and 2 *)
          let a = Runtime.Api.recv () in
          let b = Runtime.Api.recv () in
          received := [ a.Runtime.tag; b.Runtime.tag ]
        end)
  in
  Alcotest.(check (list int)) "tags 0 and 2 arrive" [ 0; 2 ] !received;
  Alcotest.(check int) "two delivered" 2 r.Runtime.messages

let test_drop_in_broadcast_partitions_subtree () =
  (* Killing the binomial root's first transmission starves that whole
     subtree: every rank below it deadlocks in recv. *)
  let n = 8 in
  let m = homogeneous n in
  let r =
    Runtime.run m
      ~failures:[ Runtime.Drop_message { src = 0; dst = 4; nth = 0 } ]
      (fun ~rank ~size ->
        Collectives.bcast ~rank ~size ~root:0 ~msg:1_000 ())
  in
  (* binomial over 8: root children 4,2,1; subtree of 4 = {4,5,6,7} *)
  Alcotest.(check (list int)) "subtree starves" [ 4; 5; 6; 7 ] r.Runtime.deadlocked

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "mpi"
    [
      ( "runtime",
        [
          quick "send/recv" test_two_rank_send_recv;
          quick "NIC serialisation" test_send_serialises_on_nic;
          quick "recv filters" test_recv_filters;
          quick "deadlock detection" test_deadlock_detection;
          quick "compute" test_compute_advances_time;
          quick "self send rejected" test_send_to_self_rejected;
          quick "api outside run" test_api_outside_run_raises;
        ] );
      ( "collectives",
        [
          quick "bcast = cost model" test_bcast_matches_cost_model;
          quick "bcast shapes" test_bcast_shapes_match_cost;
          quick "bcast nonzero root" test_bcast_nonzero_root;
          quick "bcast plan = DES" test_bcast_plan_equals_exec;
          quick "allgather formula" test_allgather_matches_formula;
          quick "scatter payloads" test_scatter_payloads;
          quick "gather order" test_gather_collects_in_rank_order;
          quick "reduce/allreduce" test_reduce_and_allreduce;
          quick "reduce max" test_reduce_max_operator;
          quick "barrier synchronises" test_barrier_synchronises;
          quick "alltoall completes" test_alltoall_completes;
          quick "noise reproducible" test_noise_reproducible;
          QCheck_alcotest.to_alcotest collective_roots_agree;
        ] );
      ( "nonblocking",
        [
          quick "isend immediate" test_isend_returns_immediately;
          quick "wait blocks" test_isend_wait_blocks_until_injection;
          quick "isend serialises" test_isend_serialises_like_send;
          quick "alltoall nonblocking faster" test_alltoall_nonblocking_faster;
        ] );
      ( "apps",
        [
          quick "solver scales" test_solver_runs_and_scales;
          quick "solver includes compute" test_solver_includes_compute;
          quick "better bcast helps" test_solver_better_bcast_helps;
          quick "master/worker" test_master_worker_runs;
          quick "no cross-talk under noise" test_solver_noisy_iterations_do_not_cross_talk;
        ] );
      ( "benchmarks",
        [
          quick "ping pong rtt" test_ping_pong_matches_rtt;
          quick "gap of train" test_gap_of_train_exact;
          quick "measure link exact" test_measure_link_recovers_ground_truth;
          quick "measure link noisy" test_measure_link_with_noise_close;
          quick "rejects" test_benchmarks_reject;
        ] );
      ( "failures",
        [
          quick "dead rank blocks receivers" test_dead_rank_blocks_receivers;
          quick "dead rank swallows messages" test_dead_rank_swallows_messages;
          quick "drop exactly nth" test_drop_message_loses_exactly_nth;
          quick "drop partitions broadcast" test_drop_in_broadcast_partitions_subtree;
        ] );
    ]

(* Golden regression tests: exact expected values for fixed seeds and the
   deterministic GRID5000 topology.  These pin down the numerical behaviour
   of the whole stack — RNG stream, instance generation, heuristic
   tie-breaking, timing arithmetic — so that any silent change to any layer
   trips a test.  If a change is *intentional* (e.g. a new tie-breaking
   rule), regenerate the constants with the printer at the bottom:

     dune exec test/test_golden.exe -- regen *)

module Instance = Gridb_sched.Instance
module Heuristics = Gridb_sched.Heuristics
module Schedule = Gridb_sched.Schedule
module Rng = Gridb_util.Rng

let check_golden name expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected %.6f, got %.6f" name expected actual)
    true
    (Float.abs (expected -. actual) < 5e-7 *. Float.max 1. (Float.abs expected))

(* GRID5000 (deterministic topology), 1 MB, root 0: predicted makespans in
   seconds. *)
let grid5000_expectations =
  [
    ("FlatTree", 2.633363);
    ("FEF", 0.600981);
    ("ECEF", 0.600981);
    ("ECEF-LA", 0.600981);
    ("ECEF-LAt", 0.600981);
    ("ECEF-LAT", 0.580931);
    ("BottomUp", 1.089735);
  ]

let test_grid5000_golden () =
  let grid = Gridb_topology.Grid5000.grid () in
  let inst = Instance.of_grid ~root:0 ~msg:1_000_000 grid in
  List.iter
    (fun (name, expected) ->
      match Heuristics.by_name name with
      | None -> Alcotest.failf "unknown heuristic %s" name
      | Some h -> check_golden name expected (Heuristics.makespan h inst /. 1e6))
    grid5000_expectations

(* Random instance stream: seed 2006, n = 10, first draw. *)
let random_expectations =
  [
    ("FlatTree", 4.607803);
    ("FEF", 3.758756);
    ("ECEF", 3.395731);
    ("ECEF-LA", 3.246838);
    ("ECEF-LAt", 3.466644);
    ("ECEF-LAT", 3.566254);
    ("BottomUp", 3.184820);
  ]

let golden_instance () =
  let rng = Rng.create 2006 in
  Instance.random ~rng ~n:10 Instance.table2_ranges

let test_random_instance_golden () =
  let inst = golden_instance () in
  List.iter
    (fun (name, expected) ->
      match Heuristics.by_name name with
      | None -> Alcotest.failf "unknown heuristic %s" name
      | Some h -> check_golden name expected (Heuristics.makespan h inst /. 1e6))
    random_expectations

let test_rng_stream_golden () =
  (* First three raw outputs of the SplitMix64 stream for seed 2006. *)
  let rng = Rng.create 2006 in
  let observed = List.init 3 (fun _ -> Rng.bits64 rng) in
  let as_strings = List.map Int64.to_string observed in
  Alcotest.(check (list string))
    "splitmix64 stream"
    [ "2585961775473798433"; "2846287610197900435"; "5817944072696408171" ]
    as_strings

let test_grid5000_instance_golden () =
  let grid = Gridb_topology.Grid5000.grid () in
  let inst = Instance.of_grid ~root:0 ~msg:1_000_000 grid in
  (* T of Orsay-A (31 machines, binomial, 100 MB/s, 47.56 us): pinned. *)
  check_golden "T Orsay-A (ms)" 50.290240 (inst.Instance.intra.(0) /. 1e3);
  check_golden "gap Orsay->IDPOT 1MB (ms)" 769.280769 (inst.Instance.gap.(0).(2) /. 1e3)

(* Golden pin of the DES executors' exact output over a seeded corpus —
   event streams, arrival vectors, protocol counters, at full precision.
   The constant was recorded from the pre-refactor monolithic
   [Exec.run]/[run_reliable] immediately BEFORE the wire/session split, so
   the refactored single-session wrappers must reproduce every byte: a
   reassociated float add, a reordered rng draw or a changed tie-break in
   the session layer fails here even though the schedules still validate. *)
let exec_corpus_digest = "d505aeb03c59f565c075e1c5b8fb93a6"
let exec_corpus_bytes = 9_195_362

let exec_corpus_buffer () =
  let module Generators = Gridb_topology.Generators in
  let module Machines = Gridb_topology.Machines in
  let module Plan = Gridb_des.Plan in
  let module Exec = Gridb_des.Exec in
  let module Faults = Gridb_des.Faults in
  let module Dynamics = Gridb_des.Dynamics in
  let module Sink = Gridb_obs.Sink in
  let module Event = Gridb_obs.Event in
  let buf = Buffer.create 65536 in
  let addf f = Buffer.add_string buf (Printf.sprintf "%.17g," f) in
  let add_arrivals a = Array.iter addf a in
  let add_events sink =
    List.iter
      (fun e ->
        Buffer.add_string buf (Event.to_json e);
        Buffer.add_char buf '\n')
      (Sink.events sink)
  in
  let faults_spec =
    match Faults.of_string "loss=0.05,crash=2e-8,degrade=1e-7" with
    | Ok s -> s
    | Error e -> Alcotest.failf "bad fault spec: %s" e
  in
  let dyn_spec =
    match Dynamics.of_string "drift=2e-5,churn=5e-8,recluster=2e5" with
    | Ok s -> s
    | Error e -> Alcotest.failf "bad dynamics spec: %s" e
  in
  for i = 0 to 11 do
    let n = 2 + (i mod 9) in
    let rng = Rng.create (21_000 + i) in
    let grid = Generators.uniform_random ~rng ~n Generators.default_random_spec in
    let machines = Machines.expand grid in
    let n_ranks = Machines.count machines in
    let msg = if i mod 2 = 0 then 1_000_000 else 65_536 in
    let root = i mod n in
    let inst = Instance.of_grid ~root ~msg grid in
    let plan = Plan.of_cluster_schedule machines (Heuristics.run Heuristics.ecef_la inst) in
    (* Simple executor: exact and noisy. *)
    let sink = Sink.memory () in
    let r = Gridb_des.Exec.run ~msg ~obs:sink machines plan in
    add_arrivals r.Exec.arrival;
    addf r.Exec.makespan;
    Buffer.add_string buf (string_of_int r.Exec.transmissions);
    add_events sink;
    let r =
      Gridb_des.Exec.run
        ~noise:(Gridb_des.Noise.Lognormal 0.08)
        ~rng:(Rng.create (91_000 + i)) ~msg machines plan
    in
    add_arrivals r.Exec.arrival;
    addf r.Exec.makespan;
    (* Reliable executor under faults, all three transports. *)
    List.iter
      (fun transport ->
        let faults = Faults.create ~seed:(61_000 + i) ~n:n_ranks faults_spec in
        let sink = Sink.memory () in
        let r =
          Exec.run_reliable ~rng:(Rng.create (31_000 + i)) ~msg ~obs:sink ~faults
            ~transport machines plan
        in
        add_arrivals r.Exec.r_arrival;
        addf r.Exec.r_makespan;
        addf r.Exec.horizon;
        Buffer.add_string buf
          (Printf.sprintf "tx=%d,rtx=%d,acks=%d,del=%d,co=%d" r.Exec.r_transmissions
             r.Exec.retransmissions r.Exec.acks r.Exec.delivered r.Exec.circuit_opens);
        List.iter (fun (p, c) -> Buffer.add_string buf (Printf.sprintf "|g%d>%d" p c)) r.Exec.gave_up;
        List.iter
          (fun (d, o, p) -> Buffer.add_string buf (Printf.sprintf "|r%d:%d>%d" d o p))
          r.Exec.reroutes;
        add_events sink)
      [ Exec.Fixed; Exec.adaptive (); Exec.adaptive ~reroute:true () ];
    (* Dynamics-bearing reliable run (drift + churn + ticks). *)
    let faults = Faults.create ~seed:(61_000 + i) ~n:n_ranks faults_spec in
    let d = Dynamics.create ~seed:(71_000 + i) ~n:n_ranks ~clusters:n dyn_spec in
    let sink = Sink.memory () in
    let r =
      Exec.run_reliable ~rng:(Rng.create (41_000 + i)) ~msg ~obs:sink ~faults ~dynamics:d
        ~tick_every:dyn_spec.Dynamics.recluster_every
        ~transport:(Exec.adaptive ~reroute:true ())
        machines plan
    in
    add_arrivals r.Exec.r_arrival;
    addf r.Exec.r_makespan;
    addf r.Exec.horizon;
    Buffer.add_string buf
      (Printf.sprintf "del=%d,left=%s,joined=%s" r.Exec.delivered
         (String.concat "," (List.map string_of_int r.Exec.left))
         (String.concat "," (List.map string_of_int r.Exec.joined)));
    add_events sink
  done;
  buf

let test_exec_corpus_golden () =
  let buf = exec_corpus_buffer () in
  Alcotest.(check int) "exec corpus size" exec_corpus_bytes (Buffer.length buf);
  Alcotest.(check string)
    "exec corpus digest" exec_corpus_digest
    (Digest.to_hex (Digest.string (Buffer.contents buf)))

let regen () =
  let grid = Gridb_topology.Grid5000.grid () in
  let inst = Instance.of_grid ~root:0 ~msg:1_000_000 grid in
  Printf.printf "grid5000 expectations:\n";
  List.iter
    (fun h ->
      Printf.printf "    (%S, %.6f);\n" h.Heuristics.name
        (Heuristics.makespan h inst /. 1e6))
    Heuristics.all;
  let inst = golden_instance () in
  Printf.printf "random expectations (seed 2006, n=10):\n";
  List.iter
    (fun h ->
      Printf.printf "    (%S, %.6f);\n" h.Heuristics.name
        (Heuristics.makespan h inst /. 1e6))
    Heuristics.all;
  let rng = Rng.create 2006 in
  Printf.printf "rng stream: %s\n"
    (String.concat "; "
       (List.init 3 (fun _ -> Int64.to_string (Rng.bits64 rng))));
  let grid = Gridb_topology.Grid5000.grid () in
  let inst = Instance.of_grid ~root:0 ~msg:1_000_000 grid in
  Printf.printf "T Orsay-A: %.6f ms, gap 0->2: %.6f ms\n"
    (inst.Instance.intra.(0) /. 1e3)
    (inst.Instance.gap.(0).(2) /. 1e3);
  let buf = exec_corpus_buffer () in
  Printf.printf "exec corpus: digest %s, %d bytes\n"
    (Digest.to_hex (Digest.string (Buffer.contents buf)))
    (Buffer.length buf)

let () =
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "regen" then regen ()
  else begin
    let quick name f = Alcotest.test_case name `Quick f in
    Alcotest.run "golden"
      [
        ( "golden",
          [
            quick "grid5000 makespans" test_grid5000_golden;
            quick "random instance makespans" test_random_instance_golden;
            quick "rng stream" test_rng_stream_golden;
            quick "grid5000 instance values" test_grid5000_instance_golden;
            quick "pre-refactor executor corpus digest" test_exec_corpus_golden;
          ] );
      ]
  end

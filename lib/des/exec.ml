module Machines = Gridb_topology.Machines

type result = Session.result = {
  arrival : float array;
  makespan : float;
  transmissions : int;
  trace : Trace.transmission list;
}

type transport = Session.transport =
  | Fixed
  | Adaptive of { config : Adaptive.config; reroute : bool }

type reliable = Session.reliable = {
  r_arrival : float array;
  r_makespan : float;
  r_transmissions : int;
  retransmissions : int;
  acks : int;
  delivered : int;
  gave_up : (int * int) list;
  crashed : int list;
  left : int list;
  joined : int list;
  horizon : float;
  reroutes : (int * int * int) list;
  circuit_opens : int;
  estimator : Adaptive.t option;
  r_trace : Trace.transmission list;
}

module Config = Session.Config

(* Both executors are single-session wrappers over {!Session}: a private
   wire sized to the session's rank population, a private engine, one
   launch, run to quiescence, extract.  Bit-identical to the historical
   monolithic executors (the golden corpus digest pins this). *)

let run_with (config : Config.t) machines plan =
  let n = Machines.count machines in
  if Plan.size plan <> n then invalid_arg "Exec.run: plan size mismatch";
  let wire = Wire.create ~n in
  let engine = Engine.create ~obs:config.Config.obs () in
  let s = Session.launch ~who:"Exec.run" ~wire ~engine config machines plan in
  Engine.run engine;
  Session.result s

let run ?(noise = Noise.Exact) ?rng ?(start_delay = 0.) ?(msg = 1_000_000)
    ?(record_trace = false) ?(obs = Gridb_obs.Sink.null) machines plan =
  run_with
    { Config.default with noise; rng; start_delay; msg; record_trace; obs }
    machines plan

let mean_makespan ?(noise = Noise.default_measured) ?(msg = 1_000_000)
    ?(repetitions = 10) ?(jobs = 1) ~seed machines plan =
  if repetitions < 1 then invalid_arg "Exec.mean_makespan: repetitions < 1";
  (* One indexed stream per repetition ([Rng.split] is pure in the base
     state and the index): equal seeds give equal means, no repetition's
     draw count can bleed into another's stream, and every repetition is a
     self-contained task the pool may run on any worker in any order. *)
  let base = Gridb_util.Rng.create seed in
  let makespans =
    Gridb_util.Pool.mapi ~jobs
      (fun rep () ->
        (run ~noise ~rng:(Gridb_util.Rng.split base rep) ~msg machines plan).makespan)
      (Array.make repetitions ())
  in
  Array.fold_left ( +. ) 0. makespans /. float_of_int repetitions

let adaptive ?(config = Adaptive.default) ?(reroute = false) () =
  Adaptive { config; reroute }

let transport_of_string str =
  match String.lowercase_ascii (String.trim str) with
  | "fixed" -> Ok Fixed
  | "adaptive" -> Ok (adaptive ())
  | "adaptive,reroute" | "adaptive+reroute" -> Ok (adaptive ~reroute:true ())
  | other ->
      Error
        (Printf.sprintf "unknown transport %S (known: fixed, adaptive, adaptive,reroute)"
           other)

let transport_to_string = function
  | Fixed -> "fixed"
  | Adaptive { reroute = false; _ } -> "adaptive"
  | Adaptive { reroute = true; _ } -> "adaptive,reroute"

let run_reliable_with (config : Config.t) machines plan =
  Config.validate ~who:"Exec.run_reliable" config machines plan;
  let wire = Wire.create ~n:(Session.population config machines) in
  let engine = Engine.create ~obs:config.Config.obs () in
  let s =
    Session.launch_reliable ~who:"Exec.run_reliable" ~wire ~engine config machines
      plan
  in
  Engine.run engine;
  Session.reliable_result s

let run_reliable ?noise ?rng ?start_delay ?msg ?record_trace ?obs ?faults ?dynamics
    ?on_tick ?tick_every ?retries ?rto_mult ?rto_min ?rto_max ?transport machines
    plan =
  run_reliable_with
    (Config.v ?noise ?rng ?start_delay ?msg ?record_trace ?obs ?faults ?dynamics
       ?on_tick ?tick_every ?retries ?rto_mult ?rto_min ?rto_max ?transport ())
    machines plan

type reliable_summary = {
  reps : int;
  delivered_fraction : float;
  mean_retransmissions : float;
  mean_reroutes : float;
  mean_makespan : float;
  stddev_makespan : float;
  total_gave_up : int;
  all_delivered : bool;
}

let mean_reliable ?(noise = Noise.default_measured) ?(msg = 1_000_000)
    ?(repetitions = 10) ?(retries = 5) ?(rto_mult = 2.) ?(rto_min = 1.)
    ?(rto_max = 1e9) ?(transport = Fixed) ?(jobs = 1) ~seed ~spec machines plan =
  if repetitions < 1 then invalid_arg "Exec.mean_reliable: repetitions < 1";
  let n = Machines.count machines in
  (* Same indexed-stream discipline as [mean_makespan]: repetition [rep]
     runs entirely on [Rng.split base rep], burning the stream's first raw
     draw for its fault seed.  Equal seeds give equal summaries, no
     repetition's draw count bleeds into another's stream, and the pool may
     execute repetitions on any worker in any order. *)
  let base = Gridb_util.Rng.create seed in
  let results =
    Gridb_util.Pool.mapi ~jobs
      (fun rep () ->
        let stream = Gridb_util.Rng.split base rep in
        let fseed = Int64.to_int (Gridb_util.Rng.bits64 stream) land max_int in
        let faults = Faults.create ~seed:fseed ~n spec in
        run_reliable ~noise ~rng:stream ~msg ~faults ~retries ~rto_mult ~rto_min
          ~rto_max ~transport machines plan)
      (Array.make repetitions ())
  in
  let makespans = Array.map (fun r -> r.r_makespan) results in
  let delivered = ref 0 in
  let retrans = ref 0 in
  let reroutes = ref 0 in
  let gave = ref 0 in
  let all = ref true in
  Array.iter
    (fun r ->
      delivered := !delivered + r.delivered;
      retrans := !retrans + r.retransmissions;
      reroutes := !reroutes + List.length r.reroutes;
      gave := !gave + List.length r.gave_up;
      if r.delivered <> n then all := false)
    results;
  let reps = float_of_int repetitions in
  let mean = Array.fold_left ( +. ) 0. makespans /. reps in
  let var =
    Array.fold_left (fun acc m -> acc +. ((m -. mean) *. (m -. mean))) 0. makespans /. reps
  in
  {
    reps = repetitions;
    delivered_fraction = float_of_int !delivered /. (reps *. float_of_int n);
    mean_retransmissions = float_of_int !retrans /. reps;
    mean_reroutes = float_of_int !reroutes /. reps;
    mean_makespan = mean;
    stddev_makespan = sqrt var;
    total_gave_up = !gave;
    all_delivered = !all;
  }
